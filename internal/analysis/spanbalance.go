package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SpanBalance checks that every observability span that is begun is
// also ended on every return path.  A span begin is capturing the
// injected clock — `start := o.Time()` on an Obs-typed receiver — and
// the end is any later statement that consumes the start value (an
// EmitSpan call, a defer, a helper taking it).  A begin that can reach
// a return without its value ever being consumed is a span opened and
// never emitted: the trace silently loses the stage, which is how the
// freeze/chase stage used to vanish from traces on early-error returns.
//
// The walker understands the repo's gating idiom: `if o.SpansOn()` and
// `if o != nil` guard the emission path purely to avoid attribute
// allocation, so consuming the start inside such a gate balances the
// span (when the gate is false, emission is a no-op and nothing is
// owed), and code inside the matching "off" region owes nothing.
type SpanBalance struct{}

func (SpanBalance) Name() string { return "spanbalance" }

func (SpanBalance) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		eachFuncBody(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl) {
			w := &spanWalker{p: p, fn: name}
			terminated := w.stmts(body.List, false)
			if !terminated {
				w.checkReturn(false)
			}
			w.checkScopeEnd(false)
			diags = append(diags, w.diags...)
		})
	}
	return diags
}

// openSpan tracks one begun span within a function walk.
type openSpan struct {
	obj      types.Object
	pos      token.Position
	sat      bool // consumed on the current path
	reported bool
}

type spanWalker struct {
	p     *Package
	fn    string
	open  []*openSpan
	diags []Diagnostic
}

// stmts walks a statement list sequentially and reports whether it
// terminates (returns or branches away) on every path through it.
func (w *spanWalker) stmts(list []ast.Stmt, off bool) bool {
	for _, s := range list {
		if w.stmt(s, off) {
			return true
		}
	}
	return false
}

func (w *spanWalker) stmt(s ast.Stmt, off bool) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		w.markRefs(st, off)
		w.noteBegin(st, off)
	case *ast.DeferStmt, *ast.GoStmt, *ast.ExprStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt:
		w.markRefs(s, off)
	case *ast.ReturnStmt:
		w.markRefs(st, off)
		w.checkReturn(off)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current path; what they owe is
		// accounted for where the loop is walked (conservatively).
		return st.Tok == token.GOTO || st.Tok == token.BREAK || st.Tok == token.CONTINUE
	case *ast.BlockStmt:
		mark := len(w.open)
		term := w.stmts(st.List, off)
		w.closeScope(mark, off, term)
		return term
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, off)
		}
		w.markRefsExpr(st.Cond, off)
		return w.ifStmt(st, off)
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, off)
		}
		w.loopBody(st.Body, off)
	case *ast.RangeStmt:
		w.markRefsExpr(st.X, off)
		w.loopBody(st.Body, off)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branchStmt(st, off)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, off)
	}
	return false
}

// noteBegin registers `start := o.Time()` (or plain assignment) as a
// span begin.  Begins inside an off region are not owed: when spans are
// off the clock reads zero and nothing will be emitted.
func (w *spanWalker) noteBegin(st *ast.AssignStmt, off bool) {
	if off || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return
	}
	id, ok := st.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Time" || len(call.Args) != 0 {
		return
	}
	if !isObsType(w.p.Info.TypeOf(sel.X)) {
		return
	}
	obj := assignedObject(w.p.Info, id)
	if obj == nil {
		return
	}
	w.open = append(w.open, &openSpan{obj: obj, pos: w.p.Fset.Position(st.Pos())})
}

// markRefs satisfies every open span whose start value the statement
// consumes (EmitSpan argument, helper call, defer, closure capture).
func (w *spanWalker) markRefs(n ast.Node, off bool) {
	for _, sp := range w.open {
		if !sp.sat && refersTo(w.p.Info, n, sp.obj) {
			sp.sat = true
		}
	}
}

func (w *spanWalker) markRefsExpr(e ast.Expr, off bool) {
	if e != nil {
		w.markRefs(e, off)
	}
}

// checkReturn reports every open unsatisfied span at a return point.
// Returns inside an off region owe nothing.
func (w *spanWalker) checkReturn(off bool) {
	if off {
		return
	}
	for _, sp := range w.open {
		if !sp.sat && !sp.reported {
			sp.reported = true
			w.diags = append(w.diags, Diagnostic{
				Rule:    "spanbalance",
				Pos:     sp.pos,
				Message: fmt.Sprintf("span begun in %s can reach a return without being emitted; emit it (or defer the emit) on every path", w.fn),
			})
		}
	}
}

// closeScope drops spans opened inside a finished block scope; one that
// leaves its scope unconsumed (and not via a terminating path, which
// checkReturn already judged) was begun and never emitted at all.
func (w *spanWalker) closeScope(mark int, off, terminated bool) {
	for _, sp := range w.open[mark:] {
		if !off && !terminated && !sp.sat && !sp.reported {
			sp.reported = true
			w.diags = append(w.diags, Diagnostic{
				Rule:    "spanbalance",
				Pos:     sp.pos,
				Message: fmt.Sprintf("span begun in %s is never emitted; consume the start value in an EmitSpan call or defer", w.fn),
			})
		}
	}
	w.open = w.open[:mark]
}

// checkScopeEnd is closeScope for the function's own body.
func (w *spanWalker) checkScopeEnd(off bool) {
	w.closeScope(0, off, false)
}

// ifStmt handles branching with the obs-gate special cases.
func (w *spanWalker) ifStmt(st *ast.IfStmt, off bool) bool {
	switch obsGate(w.p.Info, st.Cond) {
	case gateOn:
		// Consumption inside the on-gate balances the span outright —
		// when the gate is false nothing is owed.  Walk the then-branch
		// normally (its sat updates stick) and the else-branch as off.
		mark := len(w.open)
		termThen := w.stmts(st.Body.List, off)
		w.closeScope(mark, off, termThen)
		termElse := false
		if st.Else != nil {
			termElse = w.elseBranch(st.Else, true)
		}
		return termThen && termElse
	case gateOff:
		// Then-branch is the "observability disabled" world: walk it
		// with nothing owed, discard its effects on satisfaction.
		saved := w.snapshot()
		mark := len(w.open)
		termThen := w.stmts(st.Body.List, true)
		w.closeScope(mark, true, termThen)
		w.restore(saved)
		termElse := false
		if st.Else != nil {
			termElse = w.elseBranch(st.Else, off)
		}
		// If the off-branch terminates (`if o == nil { return }`), the
		// fall-through is the on-world; either way fall-through
		// continues unless both branches terminate.
		return termThen && termElse
	}
	// Ordinary condition: pessimistic merge.  A span is satisfied after
	// the if only if every non-terminating branch satisfied it.
	saved := w.snapshot()
	mark := len(w.open)
	termThen := w.stmts(st.Body.List, off)
	w.closeScope(mark, off, termThen)
	afterThen := w.snapshot()
	w.restore(saved)
	termElse := false
	if st.Else != nil {
		termElse = w.elseBranch(st.Else, off)
	}
	afterElse := w.snapshot()
	switch {
	case termThen && termElse:
		return true
	case termThen:
		w.restore(afterElse)
	case termElse:
		w.restore(afterThen)
	default:
		w.mergePessimistic(afterThen, afterElse)
	}
	return false
}

func (w *spanWalker) elseBranch(e ast.Stmt, off bool) bool {
	switch el := e.(type) {
	case *ast.BlockStmt:
		mark := len(w.open)
		term := w.stmts(el.List, off)
		w.closeScope(mark, off, term)
		return term
	case *ast.IfStmt:
		return w.stmt(el, off)
	}
	return false
}

// branchStmt walks switch/select conservatively: each clause on a
// snapshot, pessimistic merge, never treated as terminating (a missing
// default falls through).
func (w *spanWalker) branchStmt(s ast.Stmt, off bool) bool {
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, off)
		}
		w.markRefsExpr(st.Tag, off)
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, off)
		}
		w.markRefs(st.Assign, off)
		body = st.Body
	case *ast.SelectStmt:
		body = st.Body
	}
	saved := w.snapshot()
	merged := append([]bool(nil), saved...)
	first := true
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.markRefsExpr(e, off)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, off)
			}
			list = c.Body
		}
		mark := len(w.open)
		term := w.stmts(list, off)
		w.closeScope(mark, off, term)
		after := w.snapshot()
		if !term {
			if first {
				merged = after
				first = false
			} else {
				for i := range merged {
					merged[i] = merged[i] && after[i]
				}
			}
		}
		w.restore(saved)
	}
	if !first {
		// At least one clause falls through; but so may the untaken
		// path (no default), so merge against the pre-switch state too.
		for i := range merged {
			merged[i] = merged[i] && saved[i]
		}
		w.restore(merged)
	}
	return false
}

// loopBody walks a loop body on a snapshot: zero iterations must leave
// the state unchanged, so satisfaction earned inside the loop does not
// stick, but begins/returns inside are still judged.
func (w *spanWalker) loopBody(body *ast.BlockStmt, off bool) {
	saved := w.snapshot()
	mark := len(w.open)
	term := w.stmts(body.List, off)
	w.closeScope(mark, off, term)
	w.restore(saved)
}

// snapshot/restore capture the sat flags of the currently open spans.
func (w *spanWalker) snapshot() []bool {
	out := make([]bool, len(w.open))
	for i, sp := range w.open {
		out[i] = sp.sat
	}
	return out
}

func (w *spanWalker) restore(sats []bool) {
	for i := range sats {
		if i < len(w.open) {
			w.open[i].sat = sats[i]
		}
	}
}

func (w *spanWalker) mergePessimistic(a, b []bool) {
	for i := range w.open {
		sa := i < len(a) && a[i]
		sb := i < len(b) && b[i]
		w.open[i].sat = sa && sb
	}
}
