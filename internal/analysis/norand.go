package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NoRand confines math/rand to dependency injection.  Outside the
// experiment and command layers, the only permitted reference to the
// package is the type rand.Rand (as an injected *rand.Rand parameter,
// field, or result); package-level functions (rand.Intn, the global
// source) and in-place construction (rand.New, rand.NewSource) are
// flagged.  Unseeded or locally seeded randomness in the core packages
// would make generator output irreproducible and the differential
// containment tests unrepeatable.
type NoRand struct{}

// Name implements Rule.
func (NoRand) Name() string { return "norand" }

// norandExemptDirs may seed and construct generators: experiment
// drivers, command-line entry points, and runnable examples.
var norandExemptDirs = []string{"cmd", "examples", "internal/exp"}

// Check implements Rule.
func (NoRand) Check(p *Package) []Diagnostic {
	if inDirs(p.ImportPath, norandExemptDirs...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		randNames := randImportNames(f)
		if len(randNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !randNames[x.Name] {
				return true
			}
			if !resolvesToPkg(p.Info, x, "math/rand", "math/rand/v2") {
				return true
			}
			// Type references (*rand.Rand parameters, rand.Source
			// results) are the injection mechanism itself; only
			// functions and variables produce randomness.
			if obj, ok := p.Info.Uses[sel.Sel]; ok {
				if _, isType := obj.(*types.TypeName); isType {
					return true
				}
			} else if sel.Sel.Name == "Rand" || sel.Sel.Name == "Source" {
				return true
			}
			out = append(out, Diagnostic{
				Rule: "norand",
				Pos:  p.Fset.Position(sel.Pos()),
				Message: "math/rand." + sel.Sel.Name +
					" used outside cmd//internal/exp; accept an injected *rand.Rand instead",
			})
			return true
		})
	}
	return out
}

// randImportNames returns the local names under which f imports
// math/rand (or math/rand/v2).
func randImportNames(f *ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || (path != "math/rand" && path != "math/rand/v2") {
			continue
		}
		name := "rand"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = true
	}
	return out
}
