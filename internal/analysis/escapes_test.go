package analysis

import "testing"

func TestEscapesFlagsLeakedLoopLocals(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "escapes/bad.go", Escapes{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "escapes/bad.go", got, want)
}

func TestEscapesAcceptsLoopPrivateAndHoisted(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "escapes/good.go", Escapes{})
	expectFindings(t, "escapes/good.go", got, nil)
}
