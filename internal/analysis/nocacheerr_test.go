package analysis

import "testing"

func TestNoCacheErrFlagsErrorPathInsertions(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "nocacheerr/bad.go", NoCacheErr{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "nocacheerr/bad.go", got, want)
}

func TestNoCacheErrAcceptsSuccessPathInsertions(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "nocacheerr/good.go", NoCacheErr{})
	expectFindings(t, "nocacheerr/good.go", got, nil)
}
