package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// checkFixture type-checks one fixture file under the given module
// import path and returns the diagnostics the rule produces (after
// directive suppression), plus the line numbers the fixture expects to
// be flagged (its `// want <rule>` comments).
func checkFixture(t *testing.T, importPath, filename string, rule Rule) (got []Diagnostic, want []int) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "src", filename))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: fixtureImporter{},
		Error:    func(error) {},
	}
	//keyedeq:allow errdrop -- fixtures may reference unresolvable module packages on purpose
	tp, _ := conf.Check(importPath, fset, []*ast.File{f}, info)
	if tp == nil {
		tp = types.NewPackage(importPath, "fixture")
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        "testdata/src",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tp,
		Info:       info,
	}
	return Run([]*Package{p}, []Rule{rule}), wantLines(string(src), rule.Name())
}

// fixtureImporter resolves stdlib imports through the process-global
// source-import cache (one stdlib type-check per test binary, not one
// per fixture) and stubs anything else (fixtures may reference module
// paths that do not exist in the test environment).
type fixtureImporter struct{}

func (fixtureImporter) Import(path string) (*types.Package, error) {
	if strings.HasPrefix(path, "keyedeq/") {
		return types.NewPackage(path, pathBase(path)), nil
	}
	return sourceImports.Import(path)
}

var wantRE = regexp.MustCompile(`// want ([a-z][a-z -]*)$`)

// wantLines extracts the 1-based line numbers carrying a
// `// want <rule...>` marker naming the rule.
func wantLines(src, rule string) []int {
	var out []int
	for i, line := range strings.Split(src, "\n") {
		m := wantRE.FindStringSubmatch(strings.TrimRight(line, " \t"))
		if m == nil {
			continue
		}
		for _, name := range strings.Fields(m[1]) {
			if name == rule {
				out = append(out, i+1)
			}
		}
	}
	return out
}

// expectFindings asserts the diagnostics land exactly on the fixture's
// want-lines.
func expectFindings(t *testing.T, fixture string, got []Diagnostic, want []int) {
	t.Helper()
	var gotLines []int
	for _, d := range got {
		gotLines = append(gotLines, d.Pos.Line)
	}
	sort.Ints(gotLines)
	sort.Ints(want)
	if !equalInts(gotLines, want) {
		var b strings.Builder
		for _, d := range got {
			b.WriteString("  " + d.String() + "\n")
		}
		t.Errorf("%s: findings on lines %v, want %v\n%s", fixture, gotLines, want, b.String())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRuleNamesAreStable(t *testing.T) {
	want := []string{
		"detmap", "norand", "nowallclock", "panicgate", "errdrop",
		"ctxpoll", "mergeonly", "nocacheerr", "spanbalance", "lockorder", "goroleak",
		"hotalloc", "preallocate", "iface-box", "mapkey", "escapes",
	}
	rules := AllRules()
	if len(rules) != len(want) {
		t.Fatalf("AllRules returned %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.Name() != want[i] {
			t.Errorf("rule %d = %q, want %q", i, r.Name(), want[i])
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Rule:    "detmap",
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message: "msg",
	}
	if got, want := d.String(), "x.go:3:7: [detmap] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLoadModuleOnThisRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, want := range []string{"keyedeq", "keyedeq/internal/cq", "keyedeq/internal/analysis", "keyedeq/cmd/keyedeq-lint"} {
		if byPath[want] == nil {
			t.Errorf("module load missing package %s", want)
		}
	}
	// Type info must be usable: the cq package resolves its own Parse.
	cqPkg := byPath["keyedeq/internal/cq"]
	if cqPkg == nil || cqPkg.Types.Scope().Lookup("Parse") == nil {
		t.Error("internal/cq loaded without a resolvable Parse")
	}
	// Debug-tagged files are excluded from a release-mode load: the
	// invariant package must see exactly one Debug declaration.
	inv := byPath["keyedeq/internal/invariant"]
	if inv == nil {
		t.Fatal("internal/invariant not loaded")
	}
	if obj := inv.Types.Scope().Lookup("Debug"); obj == nil {
		t.Error("invariant.Debug not found; build-tag handling broke the load")
	}
	for _, f := range inv.Files {
		name := inv.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "debug_on.go") {
			t.Error("debug_on.go (keyedeq_debug) included in release-mode load")
		}
	}
}

func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := Run(pkgs, AllRules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("repo must stay lint-clean: %d finding(s)", len(diags))
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "directive.go", PanicGate{})
	expectFindings(t, "directive.go", got, want)
}
