package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the shared semantic helpers the concurrency and
// resource-discipline passes (ctxpoll, mergeonly, nocacheerr,
// spanbalance, lockorder, goroleak) build on: resolving callees through
// the lenient type info, classifying obs-gating conditions, naming
// lock/channel expressions, and recognizing the repo's context and
// observability types structurally (by package-qualified type name, so
// the rules also fire on fixture modules that mirror the shapes).

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// typeIs reports whether t (after pointer unwrap) is the named type
// pkgBase.name, matching the package by import-path base so both
// "context".Context and a fixture package named context match.
func typeIs(t types.Type, pkgBase, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		// Universe types (error) have no package.
		return pkgBase == ""
	}
	return pathBase(pkg.Path()) == pkgBase
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return typeIs(t, "context", "Context") }

// isObsType reports whether t is the observability handle type: a named
// type Obs (conventionally *obs.Obs; matched by name so fixtures can
// mirror it).
func isObsType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj() != nil && n.Obj().Name() == "Obs"
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes (plain function calls and method calls), or nil for builtins,
// conversions, function-typed values, and unresolved callees.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.F.
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcDecls maps each declared function/method object of the package to
// its declaration, for intra-package (interprocedural-lite) summaries.
func funcDecls(p *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// gateKind classifies an if-condition for the span walker.
type gateKind int

const (
	gateNone gateKind = iota // ordinary condition
	gateOn                   // then-branch is the "observability on" region
	gateOff                  // then-branch is the "observability off" region
)

// obsGate classifies cond as an observability gate: a SpansOn() call or
// a nil comparison on an Obs-typed value.  Instrumented code guards span
// emission with these purely to avoid attribute allocation, so the span
// balance analysis treats the guarded region as the real emission path.
func obsGate(info *types.Info, cond ast.Expr) gateKind {
	switch c := cond.(type) {
	case *ast.CallExpr:
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SpansOn" {
			return gateOn
		}
	case *ast.UnaryExpr:
		if c.Op.String() == "!" {
			switch obsGate(info, c.X) {
			case gateOn:
				return gateOff
			case gateOff:
				return gateOn
			}
		}
	case *ast.BinaryExpr:
		op := c.Op.String()
		if op != "==" && op != "!=" {
			return gateNone
		}
		var other ast.Expr
		if isNilIdent(info, c.X) {
			other = c.Y
		} else if isNilIdent(info, c.Y) {
			other = c.X
		} else {
			return gateNone
		}
		if !isObsType(info.TypeOf(other)) {
			return gateNone
		}
		if op == "!=" {
			return gateOn
		}
		return gateOff
	}
	return gateNone
}

// isNilIdent reports whether e is the untyped nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	obj, resolved := info.Uses[id]
	if !resolved {
		return true
	}
	_, isNil := obj.(*types.Nil)
	return isNil
}

// exprKey renders a selector/ident chain as a stable per-function key
// ("sh.mu", "c.shards[].mu"); used to pair Lock/Unlock and channel
// operations on the same object within one function.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprKey(x.X) + "[]"
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.UnaryExpr:
		return exprKey(x.X)
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	}
	return "?"
}

// refersTo reports whether any identifier under n resolves to obj.
func refersTo(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// eachFuncBody visits every function body of the file exactly once at
// its outermost level: declarations and any function literals nested in
// them.  name is a best-effort label for diagnostics.
func eachFuncBody(f *ast.File, visit func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Type, fd.Body, fd)
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(name+".func", lit.Type, lit.Body, fd)
			}
			return true
		})
	}
}

// receiverStructCtxField reports whether fd is a method whose receiver
// struct carries a context.Context field (the searcher pattern: the
// context rides the struct instead of the parameter list).
func receiverStructCtxField(p *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	n := namedOf(p.Info.TypeOf(fd.Recv.List[0].Type))
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter, returning the first one's object when the
// body's scope resolves it.
func hasCtxParam(p *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(p.Info.TypeOf(field.Type)) {
			return true
		}
		// Lenient fallback: an unresolved parameter spelled
		// context.Context still counts.
		if sel, ok := field.Type.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == "context" {
				return true
			}
		}
	}
	return false
}

// sameModulePackage reports whether other is a different package from
// p's own (nil-safe); used by mergeonly to scope the write restriction
// to cross-package access.
func foreignPackage(p *Package, other *types.Package) bool {
	return other != nil && p.Types != nil && other != p.Types
}

// methodNamed reports whether named type n declares a method called
// name (on either receiver form).
func methodNamed(n *types.Named, name string) bool {
	if n == nil {
		return false
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// tupleishElem reports whether t is a container (slice, array, map,
// channel) whose element type is tuple/row-shaped — the data the
// cancellation-polling contract is about.
func tupleishElem(t types.Type) bool {
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	case *types.Map:
		elem = u.Elem()
	case *types.Chan:
		elem = u.Elem()
	default:
		return false
	}
	n := namedOf(elem)
	if n == nil || n.Obj() == nil {
		// A slice of a tuple-ish container ([][]Tuple) still qualifies.
		return tupleishElem(elem)
	}
	switch n.Obj().Name() {
	case "Tuple", "Row", "row":
		return true
	}
	return false
}

// rangesOverTuples reports whether the range statement iterates
// tuple/relation data: the ranged expression has a tuple-ish element
// type, or is a call to a method named Tuples/Rows (lenient fallback
// when type info is incomplete).
func rangesOverTuples(p *Package, rs *ast.RangeStmt) bool {
	if tupleishElem(p.Info.TypeOf(rs.X)) {
		return true
	}
	if call, ok := rs.X.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Tuples" || sel.Sel.Name == "Rows" {
				return true
			}
		}
	}
	return false
}

// pollMentionRE matches identifiers that carry the masked-poll
// contract: cancelCheckMask and friends.
func isPollMaskIdent(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "cancelcheck") || strings.Contains(lower, "pollmask")
}
