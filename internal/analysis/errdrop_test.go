package analysis

import "testing"

func TestErrDropFlagsDiscardedErrors(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/containment", "errdrop/bad.go", ErrDrop{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "errdrop/bad.go", got, want)
}

func TestErrDropAcceptsHandledErrorsAndNonFallibleNames(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/containment", "errdrop/good.go", ErrDrop{})
	expectFindings(t, "errdrop/good.go", got, nil)
}
