package analysis

import "testing"

func TestNoWallClockFlagsTimeNow(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/schema", "nowallclock/bad.go", NoWallClock{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "nowallclock/bad.go", got, want)
}

func TestNoWallClockAcceptsInjectedTime(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/schema", "nowallclock/good.go", NoWallClock{})
	expectFindings(t, "nowallclock/good.go", got, nil)
}

func TestNoWallClockExemptsExperimentAndCommandLayers(t *testing.T) {
	for _, path := range []string{"keyedeq/internal/exp", "keyedeq/cmd/keyedeq-bench"} {
		got, _ := checkFixture(t, path, "nowallclock/bad.go", NoWallClock{})
		if len(got) != 0 {
			t.Errorf("%s: %d finding(s) in an exempt package; first: %s", path, len(got), got[0])
		}
	}
}
