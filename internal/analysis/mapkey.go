package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapKey forbids probing maps in hot loops with keys materialized per
// iteration: a string built by concatenation, fmt, a []byte→string
// conversion bound to a variable, a same-package key-builder function
// that returns a fresh string, or a struct composite literal.  Every
// such probe pays a key construction per tuple, where the planned
// per-(relation,positions) index work wants a dense ID (or at least the
// compiler's zero-alloc m[string(bytes)] read probe — an *inline*
// conversion in the index expression is deliberately legal, and so is
// the insert side of a probe-then-insert, which materializes the key
// once per distinct key rather than once per iteration).
type MapKey struct{}

func (MapKey) Name() string { return "mapkey" }

func (MapKey) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	fresh := freshStringFuncs(p)
	eachHotFunc(p, func(fd *ast.FuncDecl) {
		cold := coldSpans(fd.Body)
		// keyVars maps loop-assigned variables to how their fresh string
		// was built, for diagnostics.
		keyVars := make(map[*types.Var]string)
		w := &hotWalk{p: p}
		w.walk(fd.Body, func(n ast.Node, hot bool) bool {
			if !hot || posInSpans(cold, n.Pos()) {
				return true
			}
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if how := freshStringExpr(p, fresh, x.Rhs[i], true); how != "" {
						if v := definedOrUsedVar(p, id); v != nil {
							keyVars[v] = how
						}
					}
				}
			case *ast.IndexExpr:
				if t := p.Info.TypeOf(x.X); t == nil {
					return true
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				switch k := x.Index.(type) {
				case *ast.Ident:
					v := definedOrUsedVar(p, k)
					if v == nil {
						return true
					}
					if how, tracked := keyVars[v]; tracked {
						diags = append(diags, Diagnostic{
							Rule:    "mapkey",
							Pos:     p.Fset.Position(x.Pos()),
							Message: fmt.Sprintf("map probed with %s built per iteration via %s; intern a dense ID or probe with an inline string(bytes) conversion", k.Name, how),
						})
					}
				case *ast.CompositeLit:
					diags = append(diags, Diagnostic{
						Rule:    "mapkey",
						Pos:     p.Fset.Position(x.Pos()),
						Message: "map probed with a composite-literal key built per iteration; intern the components into a dense ID",
					})
				default:
					// An inline string(bytes) conversion is the sanctioned
					// zero-alloc probe, so conversions are exempt here.
					if how := freshStringExpr(p, fresh, x.Index, false); how != "" {
						diags = append(diags, Diagnostic{
							Rule:    "mapkey",
							Pos:     p.Fset.Position(x.Pos()),
							Message: fmt.Sprintf("map probed with a key built per iteration via %s; intern a dense ID instead", how),
						})
					}
				}
			}
			return true
		})
	})
	return diags
}

// definedOrUsedVar resolves id to its variable object on either side of
// a define/use.
func definedOrUsedVar(p *Package, id *ast.Ident) *types.Var {
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := p.Info.Uses[id].(*types.Var)
	return v
}

// freshStringExpr classifies e as an expression that materializes a new
// string each evaluation, returning a short description or "".  When
// countConversions is false, plain string(x) conversions are not
// counted (the inline map-probe exemption).
func freshStringExpr(p *Package, fresh map[*types.Func]bool, e ast.Expr, countConversions bool) string {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD && isStringType(p.Info.TypeOf(x)) {
			return "string concatenation"
		}
	case *ast.CallExpr:
		if isPkgCall(p, x, "fmt", "fmt") {
			return "a fmt call"
		}
		if callee := calleeOf(p.Info, x); callee != nil && fresh[callee] {
			return callee.Name() + " (returns a fresh string)"
		}
		if countConversions && isStringConversion(p, x) {
			return "a string conversion"
		}
	}
	return ""
}

// isStringConversion reports whether call is string(x) over a byte or
// rune slice — the conversion that copies into a new string.
func isStringConversion(p *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isStringType(tv.Type) {
		return false
	}
	at := p.Info.TypeOf(call.Args[0])
	if at == nil {
		return true // lenient: assume the copying case
	}
	s, isSlice := at.Underlying().(*types.Slice)
	if !isSlice {
		return false
	}
	b, isBasic := s.Elem().Underlying().(*types.Basic)
	return isBasic && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// freshStringFuncs computes, to a same-package fixpoint, the functions
// that return a freshly materialized string (concatenation, fmt, a
// copying conversion, or a call to another fresh-string function) — the
// projKey-style key builders whose results must not feed hot map
// probes.
func freshStringFuncs(p *Package) map[*types.Func]bool {
	decls := funcDecls(p)
	fresh := make(map[*types.Func]bool, len(decls))
	returnsCallTo := make(map[*types.Func][]*types.Func)
	//keyedeq:allow detmap -- per-function summary collection is order-insensitive
	for obj, fd := range decls {
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Results().Len() != 1 || !isStringType(sig.Results().At(0).Type()) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			switch x := ret.Results[0].(type) {
			case *ast.BinaryExpr:
				if x.Op == token.ADD && isStringType(p.Info.TypeOf(x)) {
					fresh[obj] = true
				}
			case *ast.CallExpr:
				if isPkgCall(p, x, "fmt", "fmt") || isStringConversion(p, x) {
					fresh[obj] = true
				} else if callee := calleeOf(p.Info, x); callee != nil {
					if _, local := decls[callee]; local {
						returnsCallTo[obj] = append(returnsCallTo[obj], callee)
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		//keyedeq:allow detmap -- fixpoint iteration converges to the same set in any order
		for obj, callees := range returnsCallTo {
			if fresh[obj] {
				continue
			}
			for _, c := range callees {
				if fresh[c] {
					fresh[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return fresh
}
