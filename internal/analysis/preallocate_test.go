package analysis

import "testing"

func TestPreallocateFlagsUnsizedGrowth(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "preallocate/bad.go", Preallocate{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "preallocate/bad.go", got, want)
}

func TestPreallocateAcceptsPresizedAndFieldBuffers(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "preallocate/good.go", Preallocate{})
	expectFindings(t, "preallocate/good.go", got, nil)
}
