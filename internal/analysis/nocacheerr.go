package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// NoCacheErr is the taint-lite encoding of the never-cache-cancellation
// rule: a verdict computed on an error path (the `err != nil` branch —
// cancelled, deadline-exceeded, or failed work) must never be inserted
// into a cache, or the poisoned entry outlives the error and replays a
// wrong answer to every later caller.  The rule flags cache insertions
// that happen inside an error branch, and insertions whose argument was
// (re)assigned inside one.
type NoCacheErr struct{}

func (NoCacheErr) Name() string { return "nocacheerr" }

// cachePutNames are the method names treated as cache insertions when
// the receiver looks cache-like.
var cachePutNames = map[string]bool{
	"Put": true, "put": true,
	"Add": true, "add": true,
	"Set": true, "set": true,
	"Insert": true, "insert": true,
	"Store": true, "store": true,
}

var cacheRecvRE = regexp.MustCompile(`(?i)(cache|lru|memo)`)

func (NoCacheErr) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		eachFuncBody(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl) {
			diags = append(diags, checkCacheErrFlow(p, body)...)
		})
	}
	return diags
}

func checkCacheErrFlow(p *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	// tainted holds objects assigned inside an error branch of this
	// function; a later cache insertion taking one is flagged even when
	// the insertion itself sits outside the branch.
	tainted := make(map[types.Object]ast.Node)

	regions := errorRegions(p, body)
	inRegion := func(pos ast.Node) bool {
		for _, r := range regions {
			if r.Pos() <= pos.Pos() && pos.End() <= r.End() {
				return true
			}
		}
		return false
	}
	for _, r := range regions {
		ast.Inspect(r, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := assignedObject(p.Info, id); obj != nil {
							tainted[obj] = x
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, recv, isPut := cachePutCall(p, call)
		if !isPut {
			return true
		}
		if inRegion(call) {
			diags = append(diags, Diagnostic{
				Rule: "nocacheerr",
				Pos:  p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s.%s on an error path; never cache cancelled or failed results",
					recv, sel),
			})
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					if _, bad := tainted[obj]; bad {
						diags = append(diags, Diagnostic{
							Rule: "nocacheerr",
							Pos:  p.Fset.Position(call.Pos()),
							Message: fmt.Sprintf("%s.%s argument %s was assigned on an error path; never cache cancelled or failed results",
								recv, sel, id.Name),
						})
						break
					}
				}
			}
		}
		return true
	})
	return diags
}

// errorRegions returns the statement blocks that execute only when an
// error is present: the then-branch of `if err != nil`, the else-branch
// of `if err == nil`.
func errorRegions(p *Package, body *ast.BlockStmt) []ast.Node {
	var regions []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		switch errNilCheck(p.Info, ifs.Cond) {
		case errIsNotNil:
			regions = append(regions, ifs.Body)
		case errIsNil:
			if ifs.Else != nil {
				regions = append(regions, ifs.Else)
			}
		}
		return true
	})
	return regions
}

type errCheck int

const (
	errCheckNone errCheck = iota
	errIsNotNil
	errIsNil
)

// errNilCheck classifies cond as a nil comparison on an error-typed
// value.
func errNilCheck(info *types.Info, cond ast.Expr) errCheck {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return errCheckNone
	}
	op := bin.Op.String()
	if op != "==" && op != "!=" {
		return errCheckNone
	}
	var other ast.Expr
	if isNilIdent(info, bin.X) {
		other = bin.Y
	} else if isNilIdent(info, bin.Y) {
		other = bin.X
	} else {
		return errCheckNone
	}
	if !isErrorType(info.TypeOf(other)) {
		// Lenient fallback: an unresolved identifier literally named
		// err / cerr / lastErr still counts.
		if id, ok := other.(*ast.Ident); !ok || info.TypeOf(id) != nil || !errNameRE.MatchString(id.Name) {
			return errCheckNone
		}
	}
	if op == "!=" {
		return errIsNotNil
	}
	return errIsNil
}

var errNameRE = regexp.MustCompile(`(?i)^(err|.*err)$`)

// cachePutCall reports whether call is a cache insertion: a method from
// cachePutNames on a receiver whose type name or expression spells
// cache/lru/memo.
func cachePutCall(p *Package, call *ast.CallExpr) (method, recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || !cachePutNames[sel.Sel.Name] {
		return "", "", false
	}
	recvKey := exprKey(sel.X)
	if named := namedOf(p.Info.TypeOf(sel.X)); named != nil && named.Obj() != nil {
		if cacheRecvRE.MatchString(named.Obj().Name()) {
			return sel.Sel.Name, recvKey, true
		}
		// Typed receiver that is not cache-like: trust the type over
		// the variable name.
		return "", "", false
	}
	if cacheRecvRE.MatchString(recvKey) {
		return sel.Sel.Name, recvKey, true
	}
	return "", "", false
}

// assignedObject resolves the object an assignment's LHS identifier
// denotes, for either := (Defs) or = (Uses).
func assignedObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
