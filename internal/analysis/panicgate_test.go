package analysis

import "testing"

func TestPanicGateFlagsRawPanics(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/cq", "panicgate/bad.go", PanicGate{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "panicgate/bad.go", got, want)
}

func TestPanicGateAcceptsInvariantHelpers(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/cq", "panicgate/good.go", PanicGate{})
	expectFindings(t, "panicgate/good.go", got, nil)
}

func TestPanicGateScopesToInternal(t *testing.T) {
	// The gate applies to internal/ only; the root package and commands
	// are outside its remit.
	for _, path := range []string{"keyedeq", "keyedeq/cmd/cqcheck"} {
		got, _ := checkFixture(t, path, "panicgate/bad.go", PanicGate{})
		if len(got) != 0 {
			t.Errorf("%s: %d finding(s) outside internal/; first: %s", path, len(got), got[0])
		}
	}
	// And internal/invariant itself is the gate.
	got, _ := checkFixture(t, "keyedeq/internal/invariant", "panicgate/bad.go", PanicGate{})
	if len(got) != 0 {
		t.Errorf("internal/invariant: %d finding(s); the gate may panic directly", len(got))
	}
}
