package analysis

import "testing"

func TestLockOrderFlagsImbalanceAndCycles(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "lockorder/bad.go", LockOrder{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "lockorder/bad.go", got, want)
}

func TestLockOrderAcceptsDisciplinedLocking(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "lockorder/good.go", LockOrder{})
	expectFindings(t, "lockorder/good.go", got, nil)
}
