package analysis

import "testing"

func TestDetMapFlagsUnsortedCanonicalRanges(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "detmap/bad.go", DetMap{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "detmap/bad.go", got, want)
}

func TestDetMapAcceptsSortedAndOrderInsensitive(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "detmap/good.go", DetMap{})
	expectFindings(t, "detmap/good.go", got, nil)
}
