package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc forbids per-iteration heap allocation in hot loops (see
// hot.go for what "hot" means): composite literals that allocate
// (&T{...}, slice and map literals — struct values are copies, not
// allocations, and stay legal), make/new, string concatenation, and any
// fmt.* call.  Each of these is one hidden malloc per tuple, which is
// exactly the class of regression the interning work (flat arrays,
// reused scratch buffers, appendInt-style key building) exists to
// eliminate.  Allocation inside a return statement is exempt: it runs
// once on the way out, not per iteration.
type HotAlloc struct{}

func (HotAlloc) Name() string { return "hotalloc" }

func (HotAlloc) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	eachHotFunc(p, func(fd *ast.FuncDecl) {
		cold := coldSpans(fd.Body)
		flag := func(n ast.Node, msg string) {
			diags = append(diags, Diagnostic{
				Rule:    "hotalloc",
				Pos:     p.Fset.Position(n.Pos()),
				Message: msg + " in a hot loop allocates per iteration; hoist it or reuse a scratch value",
			})
		}
		w := &hotWalk{p: p}
		w.walk(fd.Body, func(n ast.Node, hot bool) bool {
			if !hot || posInSpans(cold, n.Pos()) {
				return true
			}
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, isLit := x.X.(*ast.CompositeLit); isLit {
						flag(x, "taking the address of a composite literal")
						return false
					}
				}
			case *ast.CompositeLit:
				if allocatingLit(p, x) {
					flag(x, "a slice/map literal")
					return false
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") && isBuiltin(p.Info, id) {
					flag(x, id.Name)
					return true
				}
				if isPkgCall(p, x, "fmt", "fmt") {
					flag(x, "a fmt call")
					return true
				}
			case *ast.BinaryExpr:
				if x.Op == token.ADD && isStringType(p.Info.TypeOf(x)) {
					flag(x, "string concatenation")
					return false
				}
			case *ast.AssignStmt:
				if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(p.Info.TypeOf(x.Lhs[0])) {
					flag(x, "string concatenation")
					return false
				}
			}
			return true
		})
	})
	return diags
}

// allocatingLit reports whether the composite literal heap-allocates:
// slice and map literals do, struct and array values do not.  With
// incomplete type info the syntax decides (an explicit []T or map type,
// or an ellipsis-length array, which is a slice-shaped spelling only in
// fixtures).
func allocatingLit(p *Package, lit *ast.CompositeLit) bool {
	if t := p.Info.TypeOf(lit); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}
	switch tt := lit.Type.(type) {
	case *ast.ArrayType:
		return tt.Len == nil
	case *ast.MapType:
		return true
	}
	return false
}
