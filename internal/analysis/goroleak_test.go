package analysis

import "testing"

func TestGoroLeakFlagsFireAndForget(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "goroleak/bad.go", GoroLeak{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "goroleak/bad.go", got, want)
}

func TestGoroLeakAcceptsJoinedGoroutines(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "goroleak/good.go", GoroLeak{})
	expectFindings(t, "goroleak/good.go", got, nil)
}
