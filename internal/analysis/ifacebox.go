package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// IfaceBox forbids boxing non-pointer concrete values into interfaces
// inside hot loops: converting an int, string, struct, or slice to an
// interface type copies the value onto the heap (one allocation per
// conversion), whereas pointer-shaped values (pointers, maps, channels,
// funcs) ride in the interface word for free.  The two conversion sites
// that matter are call arguments whose parameter is interface-typed and
// assignments (including map/slice element stores) to interface-typed
// destinations.  Constants are exempt — small-value boxing of constants
// is resolved statically by the runtime's shared boxes.  This is the
// exact boxing the interning milestone replaces with dense uint32 IDs.
type IfaceBox struct{}

func (IfaceBox) Name() string { return "iface-box" }

func (IfaceBox) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	eachHotFunc(p, func(fd *ast.FuncDecl) {
		cold := coldSpans(fd.Body)
		flag := func(e ast.Expr, dst types.Type) {
			t := p.Info.TypeOf(e)
			diags = append(diags, Diagnostic{
				Rule:    "iface-box",
				Pos:     p.Fset.Position(e.Pos()),
				Message: fmt.Sprintf("boxing %s into %s allocates per iteration in a hot loop; keep the concrete type or use a dense interned ID", typeName(p, t), typeName(p, dst)),
			})
		}
		w := &hotWalk{p: p}
		w.walk(fd.Body, func(n ast.Node, hot bool) bool {
			if !hot || posInSpans(cold, n.Pos()) {
				return true
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				sig, ok := p.Info.TypeOf(x.Fun).(*types.Signature)
				if !ok || x.Ellipsis.IsValid() {
					return true
				}
				for i, arg := range x.Args {
					pt := paramType(sig, i)
					if isInterface(pt) && boxes(p, arg) {
						flag(arg, pt)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					lt := p.Info.TypeOf(lhs)
					if isInterface(lt) && boxes(p, x.Rhs[i]) {
						flag(x.Rhs[i], lt)
					}
				}
			}
			return true
		})
	})
	return diags
}

// paramType resolves the type of argument i against sig, spreading the
// variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether storing e into an interface destination heap-
// allocates: its static type is a concrete non-pointer-shaped type and
// the value is not a compile-time constant (and not nil).
func boxes(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value != nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil || isInterface(t) || pointerShaped(t) {
		return false
	}
	if b, isBasic := t.(*types.Basic); isBasic && b.Info()&types.IsUntyped != 0 {
		return false
	}
	return true
}

// typeName renders t relative to the package for diagnostics.
func typeName(p *Package, t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, types.RelativeTo(p.Types))
}
