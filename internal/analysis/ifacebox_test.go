package analysis

import "testing"

func TestIfaceBoxFlagsConcreteToInterface(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "ifacebox/bad.go", IfaceBox{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "ifacebox/bad.go", got, want)
}

func TestIfaceBoxAcceptsPointersAndConstants(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "ifacebox/good.go", IfaceBox{})
	expectFindings(t, "ifacebox/good.go", got, nil)
}
