package analysis

import "testing"

func TestHotAllocFlagsPerIterationAllocation(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "hotalloc/bad.go", HotAlloc{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "hotalloc/bad.go", got, want)
}

func TestHotAllocAcceptsScratchReuseAndColdCode(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "hotalloc/good.go", HotAlloc{})
	expectFindings(t, "hotalloc/good.go", got, nil)
}
