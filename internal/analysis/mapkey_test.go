package analysis

import "testing"

func TestMapKeyFlagsPerIterationKeys(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "mapkey/bad.go", MapKey{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "mapkey/bad.go", got, want)
}

func TestMapKeyAcceptsDenseIDsAndInlineProbes(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "mapkey/good.go", MapKey{})
	expectFindings(t, "mapkey/good.go", got, nil)
}
