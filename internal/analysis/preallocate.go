package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Preallocate flags appends in hot loops that grow a slice whose final
// size was knowable up front: the slice is a local declared empty with
// no capacity (var s []T, s := []T{}, make([]T, 0)) outside the loop,
// and the loop between the declaration and the append ranges over a
// slice, array, or map — so make(..., 0, len(ranged)) was available.
// Growing such a slice by doubling re-allocates and copies log(n)
// times per pass, the classic worklist mistake the chase's wave buffers
// exist to avoid.  Appends to struct fields are exempt: a field buffer
// is the cross-call reuse pattern itself (truncate, refill, keep the
// capacity).
type Preallocate struct{}

func (Preallocate) Name() string { return "preallocate" }

func (Preallocate) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	eachHotFunc(p, func(fd *ast.FuncDecl) {
		cold := coldSpans(fd.Body)
		unsized := unsizedSliceDecls(p, fd)
		w := &hotWalk{p: p}
		w.walk(fd.Body, func(n ast.Node, hot bool) bool {
			if !hot || posInSpans(cold, n.Pos()) {
				return true
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj, _ := p.Info.Uses[lhs].(*types.Var)
			if obj == nil || !unsized[obj] {
				return true
			}
			if !isSelfAppend(p, as.Rhs[0], obj) {
				return true
			}
			// The growth is per-iteration only if the declaration sits
			// outside some enclosing loop, and the capacity is derivable
			// only if such a loop ranges over sized data.
			ranged := sizedRangeBetween(p, w.loops, obj.Pos())
			if ranged == "" {
				return true
			}
			diags = append(diags, Diagnostic{
				Rule:    "preallocate",
				Pos:     p.Fset.Position(as.Pos()),
				Message: fmt.Sprintf("%s grows per iteration but was declared without capacity; presize with make(..., 0, len(%s))", lhs.Name, ranged),
			})
			return true
		})
	})
	return diags
}

// unsizedSliceDecls collects the function's local slice variables
// declared empty with no capacity hint: var s []T, s := []T{},
// s := make([]T, 0).  Anything initialized with elements, a length, a
// capacity, or an arbitrary expression is presumed sized.
func unsizedSliceDecls(p *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(id *ast.Ident) {
		if v, ok := p.Info.Defs[id].(*types.Var); ok && v != nil {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				if emptyNoCapacity(p, x.Rhs[i]) {
					mark(id)
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == 0 {
				for _, id := range x.Names {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// emptyNoCapacity reports whether e builds an empty slice with no
// capacity: []T{} or make([]T, 0).
func emptyNoCapacity(p *Package, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return len(x.Elts) == 0 && allocatingLit(p, x)
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || !isBuiltin(p.Info, id) || len(x.Args) != 2 {
			return false
		}
		lit, ok := x.Args[1].(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

// isSelfAppend reports whether e is append(obj, ...).
func isSelfAppend(p *Package, e ast.Expr, obj *types.Var) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || !isBuiltin(p.Info, id) {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	return ok && p.Info.Uses[first] == obj
}

// sizedRangeBetween scans the enclosing-loop chain for a range loop
// that (a) starts after the variable's declaration, so the slice grows
// across its iterations, and (b) ranges over len()-able data (slice,
// array, or map), returning a printable name for the ranged expression
// — the evidence that the capacity was derivable.
func sizedRangeBetween(p *Package, loops []ast.Stmt, declPos token.Pos) string {
	for _, l := range loops {
		rs, ok := l.(*ast.RangeStmt)
		if !ok || rs.Pos() <= declPos {
			continue
		}
		if t := p.Info.TypeOf(rs.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Map:
			default:
				continue
			}
		}
		return exprKey(rs.X)
	}
	return ""
}
