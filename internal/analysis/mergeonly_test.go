package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestMergeOnlyModuleFixture runs the rule over a real mini-module
// under testdata: the rule is about cross-package writes, so its
// fixture needs genuine cross-package type information (a defining
// package and a consumer), which the single-file harness cannot give.
func TestMergeOnlyModuleFixture(t *testing.T) {
	root := filepath.Join("testdata", "mod_mergeonly")
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	diags := Run(pkgs, []Rule{MergeOnly{}})

	want := moduleWantMarks(t, root, "mergeonly")
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line))
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		for _, d := range diags {
			t.Logf("  %s", d)
		}
		t.Errorf("mergeonly module fixture: findings %v, want %v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("module fixture declares no want-marks")
	}
}

// moduleWantMarks collects `// want <rule>` markers from every Go file
// of a fixture module, as "base.go:line" strings.
func moduleWantMarks(t *testing.T, root, rule string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range wantLines(string(src), rule) {
			out = append(out, fmt.Sprintf("%s:%d", filepath.Base(path), line))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}
