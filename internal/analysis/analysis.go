// Package analysis is keyedeq's repo-specific static analyzer.  It
// loads every package in the module with go/parser and go/types (stdlib
// only — the module stays dependency-free) and enforces the repo's
// determinism and error-discipline invariants as named, individually
// testable rules:
//
//	detmap      canonicalizing functions must not iterate maps unsorted
//	norand      math/rand only as an injected *rand.Rand parameter
//	nowallclock no time.Now outside cmd/ and internal/exp
//	panicgate   internal packages panic only via internal/invariant
//	errdrop     no discarded errors from Parse*/Chase*/Check* APIs
//
// A finding can be suppressed — with justification — by a directive
// comment on the flagged line or the line above it:
//
//	//keyedeq:allow detmap -- iteration is order-insensitive
//
// The driver is cmd/keyedeq-lint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the package's import path, e.g. "keyedeq/internal/cq".
	ImportPath string
	// Dir is the directory the package was loaded from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the checked package object (may be incomplete if the
	// lenient loader hit errors; rules must tolerate missing info).
	Types *types.Package
	// Info holds type information for expressions in Files.
	Info *types.Info
}

// Diagnostic is one rule finding.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one named, independently testable check.
type Rule interface {
	Name() string
	// Check inspects one package and returns its findings.  Directive
	// suppression is applied by Run, not by the rule.
	Check(p *Package) []Diagnostic
}

// AllRules returns the repo rule set in reporting order.
func AllRules() []Rule {
	return []Rule{DetMap{}, NoRand{}, NoWallClock{}, PanicGate{}, ErrDrop{}}
}

// Run applies the rules to every package, drops suppressed findings,
// and returns the rest sorted by position.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		allow := collectAllows(p)
		for _, r := range rules {
			for _, d := range r.Check(p) {
				if allow.covers(r.Name(), d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// allowSet maps file -> line -> rule names suppressed on that line.
type allowSet map[string]map[int]map[string]bool

func (a allowSet) covers(rule string, pos token.Position) bool {
	lines := a[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line and the line below
	// (directive-above-the-statement style).
	return lines[pos.Line][rule] || lines[pos.Line-1][rule]
}

// collectAllows gathers //keyedeq:allow <rules> [-- reason] directives.
func collectAllows(p *Package) allowSet {
	out := make(allowSet)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//keyedeq:allow")
				if !ok {
					continue
				}
				text, _, _ = strings.Cut(text, "--")
				pos := p.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = make(map[string]bool)
					lines[pos.Line] = rules
				}
				for _, name := range strings.Fields(text) {
					rules[name] = true
				}
			}
		}
	}
	return out
}

// relPath returns the module-relative path of an import path, e.g.
// "internal/cq" for "keyedeq/internal/cq" and "" for the root package.
func relPath(importPath string) string {
	if i := strings.Index(importPath, "/"); i >= 0 {
		return importPath[i+1:]
	}
	return ""
}

// inDirs reports whether the package lives under any of the given
// module-relative directory prefixes ("cmd", "internal/exp", ...).
func inDirs(importPath string, dirs ...string) bool {
	rel := relPath(importPath)
	for _, d := range dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// resolvesToPkg reports whether id denotes an imported package with one
// of the given paths, under lenient type info: an identifier resolving
// to a non-package object (a shadowing declaration) is definitely not
// the package; an unresolved identifier is assumed to be it, since the
// caller already matched the file's import names syntactically.
func resolvesToPkg(info *types.Info, id *ast.Ident, paths ...string) bool {
	obj, ok := info.Uses[id]
	if !ok {
		return true
	}
	pn, isPkg := obj.(*types.PkgName)
	if !isPkg {
		return false
	}
	for _, p := range paths {
		if pn.Imported().Path() == p {
			return true
		}
	}
	return false
}

// isBuiltin reports whether id resolves to the universe-scope builtin
// of that name (and not a shadowing declaration).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj, ok := info.Uses[id]
	if !ok {
		// Unresolved identifiers in a lenient load: fall back to the
		// name itself when it is a universe builtin.
		return types.Universe.Lookup(id.Name) != nil
	}
	_, isb := obj.(*types.Builtin)
	return isb
}
