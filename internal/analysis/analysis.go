// Package analysis is keyedeq's repo-specific static analyzer.  It
// loads every package in the module with go/parser and go/types (stdlib
// only — the module stays dependency-free) and enforces the repo's
// determinism and error-discipline invariants as named, individually
// testable rules:
//
//	detmap      canonicalizing functions must not iterate maps unsorted
//	norand      math/rand only as an injected *rand.Rand parameter
//	nowallclock no time.Now outside cmd/ and internal/exp
//	panicgate   internal packages panic only via internal/invariant
//	errdrop     no discarded errors from Parse*/Chase*/Check* APIs
//
// and six concurrency/resource-discipline invariants, each the
// generalization of a bug class the repo has already paid for (see
// DESIGN.md §12 for the bug-class → rule mapping):
//
//	ctxpoll     context-taking tuple/relation loops must poll cancellation
//	mergeonly   Merge-owning stats/report structs are written only by
//	            their defining package
//	nocacheerr  error-path values must not flow into cache Put/Add
//	spanbalance every obs span begin is emitted on every return path
//	lockorder   Lock/Unlock balance on every path, acyclic nesting order
//	goroleak    every spawned goroutine has a join or cancel path
//
// and five allocation/escape-discipline invariants that run only over
// functions reachable from a //keyedeq:hot directive (see hot.go for
// the marking and propagation; DESIGN.md §13 maps each rule to the
// interning ROADMAP item it guards):
//
//	hotalloc    no per-iteration composite literals, make/new, string
//	            concatenation, or fmt.* calls in hot loops
//	preallocate append targets grown in a loop of known trip count must
//	            be presized
//	iface-box   no boxing of non-pointer concrete values into
//	            interfaces inside hot loops
//	mapkey      no per-iteration string/struct key materialization for
//	            map access in hot loops when a dense ID is available
//	escapes     loop-local allocations must not escape (address taken,
//	            stored to heap, or passed to an unknown callee)
//
// A finding can be suppressed — the justification after “--” is
// mandatory — by a directive comment on the flagged line or the line
// above it:
//
//	//keyedeq:allow detmap -- iteration is order-insensitive
//
// A directive without a justification, or naming no known rule, is
// itself a finding (rule "directive"), and suppressions are counted so
// CI output shows how much is being waved through.  A well-formed
// directive that cannot take effect — an allow with no code on its line
// or the line below, a hot marker outside a function's doc comment — is
// reported under the pseudo-rule "baddirective".
//
// The driver is cmd/keyedeq-lint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the package's import path, e.g. "keyedeq/internal/cq".
	ImportPath string
	// Dir is the directory the package was loaded from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the checked package object (may be incomplete if the
	// lenient loader hit errors; rules must tolerate missing info).
	Types *types.Package
	// Info holds type information for expressions in Files.
	Info *types.Info

	// Hot-set memo (see hot.go): resolved once per package, shared by
	// the five allocation rules and the directive accounting.
	hotDone bool
	hotSet  map[*types.Func]bool
	hotBad  []Diagnostic
}

// Diagnostic is one rule finding.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one named, independently testable check.
type Rule interface {
	Name() string
	// Check inspects one package and returns its findings.  Directive
	// suppression is applied by Run, not by the rule.
	Check(p *Package) []Diagnostic
}

// AllRules returns the repo rule set in reporting order.
func AllRules() []Rule {
	return []Rule{
		DetMap{}, NoRand{}, NoWallClock{}, PanicGate{}, ErrDrop{},
		CtxPoll{}, MergeOnly{}, NoCacheErr{}, SpanBalance{}, LockOrder{}, GoroLeak{},
		HotAlloc{}, Preallocate{}, IfaceBox{}, MapKey{}, Escapes{},
	}
}

// Summary is the full outcome of one analyzer run: the surviving
// findings plus an account of what directive suppression removed, so
// drivers (and CI) can report how much is being waved through.
type Summary struct {
	// Diagnostics are the unsuppressed findings, sorted by position.
	// Malformed //keyedeq:allow directives are included under the
	// pseudo-rule "directive".
	Diagnostics []Diagnostic
	// Suppressed counts findings dropped by a justified directive.
	Suppressed int
}

// Run applies the rules to every package, drops suppressed findings,
// and returns the rest sorted by position.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	return RunSummary(pkgs, rules).Diagnostics
}

// RunSummary is Run returning the suppression accounting as well.
func RunSummary(pkgs []*Package, rules []Rule) Summary {
	var sum Summary
	for _, p := range pkgs {
		allow, bad := collectAllows(p)
		sum.Diagnostics = append(sum.Diagnostics, bad...)
		sum.Diagnostics = append(sum.Diagnostics, p.hotDirectiveFindings()...)
		for _, r := range rules {
			for _, d := range r.Check(p) {
				if allow.covers(r.Name(), d.Pos) {
					sum.Suppressed++
					continue
				}
				sum.Diagnostics = append(sum.Diagnostics, d)
			}
		}
	}
	out := sum.Diagnostics
	// The full (file, line, col, rule, message) key makes the order a
	// pure function of the findings: package check order varies with the
	// concurrent load schedule, and two findings can share a position
	// and rule, so every comparator field short of the message would
	// leave sort.Slice (unstable) free to flip them between runs.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return sum
}

// allowSet maps file -> line -> rule names suppressed on that line.
type allowSet map[string]map[int]map[string]bool

func (a allowSet) covers(rule string, pos token.Position) bool {
	lines := a[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line and the line below
	// (directive-above-the-statement style).
	return lines[pos.Line][rule] || lines[pos.Line-1][rule]
}

// ParseAllowDirective parses one comment's text as a //keyedeq:allow
// directive.  It returns the rule names and the justification after
// "--", with ok reporting whether the comment is a directive at all.
// The justification is mandatory: a directive with an empty reason or
// naming no known rule is malformed, which Run reports as a finding
// rather than silently honoring (or silently ignoring) it.
func ParseAllowDirective(comment string) (rules []string, reason string, ok bool) {
	text, ok := strings.CutPrefix(comment, "//keyedeq:allow")
	if !ok {
		return nil, "", false
	}
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		// "//keyedeq:allowx" is not a directive.
		return nil, "", false
	}
	names, reason, _ := strings.Cut(text, "--")
	return strings.Fields(names), strings.TrimSpace(reason), true
}

// knownRuleNames is the directive vocabulary: every catalogue rule.
func knownRuleNames() map[string]bool {
	out := make(map[string]bool)
	for _, r := range AllRules() {
		out[r.Name()] = true
	}
	return out
}

// codeStartLines collects the lines on which a non-comment declaration,
// statement, or expression begins — the only lines a finding can land
// on.  An allow directive whose own line and next line carry no such
// node can never suppress anything; collectAllows reports it as
// misattached instead of letting it rot silently.
func codeStartLines(p *Package, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[p.Fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}

// collectAllows gathers //keyedeq:allow <rules> -- <reason> directives,
// returning the suppression set plus a finding for every malformed
// directive (missing justification, or no known rule named) and every
// orphaned one (no code on its line or the line below — the directive
// suppresses nothing where it stands).
func collectAllows(p *Package) (allowSet, []Diagnostic) {
	out := make(allowSet)
	var bad []Diagnostic
	known := knownRuleNames()
	for _, f := range p.Files {
		code := codeStartLines(p, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := ParseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				anyKnown := false
				for _, name := range names {
					if known[name] {
						anyKnown = true
					}
				}
				switch {
				case reason == "":
					bad = append(bad, Diagnostic{
						Rule:    "directive",
						Pos:     pos,
						Message: "suppression without justification; write //keyedeq:allow <rules> -- <reason>",
					})
					continue
				case !anyKnown:
					bad = append(bad, Diagnostic{
						Rule:    "directive",
						Pos:     pos,
						Message: fmt.Sprintf("suppression names no known rule (got %q)", strings.Join(names, " ")),
					})
					continue
				case !code[pos.Line] && !code[pos.Line+1]:
					bad = append(bad, Diagnostic{
						Rule:    "baddirective",
						Pos:     pos,
						Message: "//keyedeq:allow suppresses findings on its line or the line below, and neither holds code here; move it onto the flagged statement",
					})
					continue
				}
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = make(map[string]bool)
					lines[pos.Line] = rules
				}
				for _, name := range names {
					rules[name] = true
				}
			}
		}
	}
	return out, bad
}

// relPath returns the module-relative path of an import path, e.g.
// "internal/cq" for "keyedeq/internal/cq" and "" for the root package.
func relPath(importPath string) string {
	if i := strings.Index(importPath, "/"); i >= 0 {
		return importPath[i+1:]
	}
	return ""
}

// inDirs reports whether the package lives under any of the given
// module-relative directory prefixes ("cmd", "internal/exp", ...).
func inDirs(importPath string, dirs ...string) bool {
	rel := relPath(importPath)
	for _, d := range dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// resolvesToPkg reports whether id denotes an imported package with one
// of the given paths, under lenient type info: an identifier resolving
// to a non-package object (a shadowing declaration) is definitely not
// the package; an unresolved identifier is assumed to be it, since the
// caller already matched the file's import names syntactically.
func resolvesToPkg(info *types.Info, id *ast.Ident, paths ...string) bool {
	obj, ok := info.Uses[id]
	if !ok {
		return true
	}
	pn, isPkg := obj.(*types.PkgName)
	if !isPkg {
		return false
	}
	for _, p := range paths {
		if pn.Imported().Path() == p {
			return true
		}
	}
	return false
}

// isBuiltin reports whether id resolves to the universe-scope builtin
// of that name (and not a shadowing declaration).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj, ok := info.Uses[id]
	if !ok {
		// Unresolved identifiers in a lenient load: fall back to the
		// name itself when it is a universe builtin.
		return types.Universe.Lookup(id.Name) != nil
	}
	_, isb := obj.(*types.Builtin)
	return isb
}
