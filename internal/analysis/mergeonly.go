package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MergeOnly generalizes the single-merge-point rule from the stats
// integrity work: a struct type that owns a Merge method (such as
// containment.Stats or an engine report type) has exactly two sanctioned
// write paths — Merge itself, and code in the type's defining package
// (its constructors).  Any other package assigning to its fields,
// incrementing them, or building a non-zero composite literal is
// recreating the ad-hoc accumulation bugs the Merge method exists to
// prevent; the fix is a constructor or Merge call in the owning package.
type MergeOnly struct{}

func (MergeOnly) Name() string { return "mergeonly" }

func (MergeOnly) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if d, ok := protectedFieldWrite(p, lhs); ok {
						diags = append(diags, d)
					}
				}
			case *ast.IncDecStmt:
				if d, ok := protectedFieldWrite(p, st.X); ok {
					diags = append(diags, d)
				}
			case *ast.CompositeLit:
				if len(st.Elts) == 0 {
					return true
				}
				named := namedOf(p.Info.TypeOf(st))
				if owner, prot := protectedBy(p, named); prot {
					diags = append(diags, Diagnostic{
						Rule: "mergeonly",
						Pos:  p.Fset.Position(st.Pos()),
						Message: fmt.Sprintf("non-zero composite literal of %s.%s outside its defining package; use a %s constructor or Merge",
							owner, named.Obj().Name(), owner),
					})
				}
			case *ast.UnaryExpr:
				// &T{...} is handled via the CompositeLit case.
				_ = st
			}
			return true
		})
	}
	return diags
}

// protectedFieldWrite reports whether lhs writes a field of a
// Merge-owning struct defined in another package.
func protectedFieldWrite(p *Package, lhs ast.Expr) (Diagnostic, bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return Diagnostic{}, false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return Diagnostic{}, false
	}
	named := namedOf(selection.Recv())
	owner, prot := protectedBy(p, named)
	if !prot {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Rule: "mergeonly",
		Pos:  p.Fset.Position(sel.Pos()),
		Message: fmt.Sprintf("field %s of %s.%s written outside its defining package; route the write through %s.Merge or a constructor",
			sel.Sel.Name, owner, named.Obj().Name(), named.Obj().Name()),
	}, true
}

// protectedBy reports whether named is a Merge-owning struct type
// defined in a package other than p's own, returning the owning
// package's base name for the message.
func protectedBy(p *Package, named *types.Named) (string, bool) {
	if named == nil || named.Obj() == nil {
		return "", false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return "", false
	}
	if !methodNamed(named, "Merge") {
		return "", false
	}
	if !foreignPackage(p, named.Obj().Pkg()) {
		return "", false
	}
	return named.Obj().Pkg().Name(), true
}
