package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// DetMap enforces deterministic map iteration on canonicalization
// paths.  Any non-test function whose name matches
// Canonical|String|Encode|Hash|Key and that ranges over a map is
// flagged, unless the loop is a pure key/value collection whose
// collected slice is subsequently sorted in the same function (the
// sanctioned collect-sort-iterate idiom).  Go randomizes map iteration
// order, so an unsorted range in a canonical form, printer, or key
// builder silently breaks schema-isomorphism checks (Theorem 13) and
// every differential test built on them.
type DetMap struct{}

// Name implements Rule.
func (DetMap) Name() string { return "detmap" }

var detmapFuncRE = regexp.MustCompile(`Canonical|String|Encode|Hash|Key`)

// Check implements Rule.
func (DetMap) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !detmapFuncRE.MatchString(fd.Name.Name) {
				continue
			}
			out = append(out, checkDetMapFunc(p, fd)...)
		}
	}
	return out
}

func checkDetMapFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectOnlySorted(p, fd.Body, rs) {
			return true
		}
		out = append(out, Diagnostic{
			Rule: "detmap",
			Pos:  p.Fset.Position(rs.For),
			Message: "function " + fd.Name.Name +
				" ranges over a map without sorting keys; collect keys, sort, then iterate",
		})
		return true
	})
	return out
}

// collectOnlySorted reports whether the map range is the collection
// half of the collect-sort-iterate idiom: every statement in its body
// only accumulates into slices, maps, or counters (order-insensitive),
// and every slice it appends to is passed to a sort call after the
// loop.
func collectOnlySorted(p *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	var appended []*ast.Ident
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			switch lhs := s.Lhs[0].(type) {
			case *ast.Ident:
				// xs = append(xs, ...) collects; n += ... counts, but
				// only numeric accumulation commutes — string
				// concatenation in map order is exactly the bug.
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					fn, ok := call.Fun.(*ast.Ident)
					if !ok || fn.Name != "append" || !isBuiltin(p.Info, fn) {
						return false
					}
					appended = append(appended, lhs)
					continue
				}
				if s.Tok.String() == "+=" && isNumeric(p.Info.TypeOf(lhs)) {
					continue
				}
				return false
			case *ast.IndexExpr:
				// m2[k] = v: writes into another map keyed by the
				// iteration variable are order-insensitive.
				if t := p.Info.TypeOf(lhs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						continue
					}
				}
				return false
			default:
				return false
			}
		case *ast.IncDecStmt:
			if _, ok := s.X.(*ast.Ident); ok {
				continue
			}
			return false
		default:
			return false
		}
	}
	for _, id := range appended {
		if !sortedAfter(p, fnBody, rs, id) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether identifier id is an argument to a sort
// call located after the range statement within the function body.
func sortedAfter(p *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt, id *ast.Ident) bool {
	obj := p.Info.ObjectOf(id)
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			aid, ok := arg.(*ast.Ident)
			if !ok {
				continue
			}
			if aid.Name == id.Name && (obj == nil || p.Info.ObjectOf(aid) == obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isNumeric reports whether t is a numeric basic type (accumulating
// into one commutes, so iteration order cannot leak).
func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// isSortCall recognizes sort.*, slices.Sort*, and local sort helpers
// (sortInts and friends) by callee name.
func isSortCall(call *ast.CallExpr) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fn.Sel.Name
		if x, ok := fn.X.(*ast.Ident); ok && x.Name == "sort" {
			return true
		}
	case *ast.Ident:
		name = fn.Name
	default:
		return false
	}
	return strings.Contains(name, "Sort") || strings.HasPrefix(name, "sort")
}
