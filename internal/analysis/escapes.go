package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Escapes is the escape-lite analysis over hot loops: a loop-local
// allocation (x := make/new/&T{...}, or a composite value whose address
// is taken) must stay loop-private.  The moment it is stored somewhere
// that outlives the iteration — an outer variable, a struct field, a
// map or slice element, a channel — or handed to a callee the analyzer
// cannot see into (another package, a dynamic call), the compiler's
// escape analysis reaches the same verdict and the allocation moves to
// the heap, once per iteration.  Same-package callees are exempt:
// hotness propagation already walks into them, and the compiler can
// often prove they do not leak.  Stores inside return statements are
// exempt (one escape on the way out is the function's result, not a
// per-iteration leak).
type Escapes struct{}

func (Escapes) Name() string { return "escapes" }

// escKind distinguishes how a tracked variable references fresh memory.
type escKind int

const (
	escRef escKind = iota // x := make(...) / new(...) / &T{...}
	escVal                // x := T{...}: escapes only via &x
)

// escVar is one tracked loop-local allocation.
type escVar struct {
	kind escKind
	// loop is the innermost loop enclosing the declaration; a store
	// target declared outside it outlives the iteration.
	loop ast.Stmt
}

func (Escapes) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	eachHotFunc(p, func(fd *ast.FuncDecl) {
		cold := coldSpans(fd.Body)
		tracked := make(map[*types.Var]escVar)
		flag := func(n ast.Node, name, how string) {
			diags = append(diags, Diagnostic{
				Rule:    "escapes",
				Pos:     p.Fset.Position(n.Pos()),
				Message: fmt.Sprintf("loop-local allocation %s escapes the hot loop (%s), forcing a heap allocation per iteration; hoist it or keep it loop-private", name, how),
			})
		}
		w := &hotWalk{p: p}
		w.walk(fd.Body, func(n ast.Node, hot bool) bool {
			if !hot || posInSpans(cold, n.Pos()) {
				return true
			}
			switch x := n.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					for i, lhs := range x.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || i >= len(x.Rhs) {
							continue
						}
						kind, isAlloc := allocKind(p, x.Rhs[i])
						if !isAlloc {
							continue
						}
						if v, ok := p.Info.Defs[id].(*types.Var); ok && v != nil {
							tracked[v] = escVar{kind: kind, loop: w.innermostLoop()}
						}
					}
					return true
				}
				for i, rhs := range x.Rhs {
					if i >= len(x.Lhs) {
						break
					}
					for _, esc := range escapingRefs(p, tracked, rhs) {
						if target, outlives := storeOutlivesLoop(p, x.Lhs[i], tracked[esc.v].loop); outlives {
							flag(x, esc.name, "stored to "+target)
						}
					}
				}
			case *ast.SendStmt:
				for _, esc := range escapingRefs(p, tracked, x.Value) {
					flag(x, esc.name, "sent on a channel")
				}
			case *ast.CallExpr:
				if retainer, unknown := unknownCallee(p, x); unknown {
					for _, arg := range x.Args {
						for _, esc := range escapingRefs(p, tracked, arg) {
							flag(x, esc.name, "passed to "+retainer+", which may retain it")
						}
					}
				}
			}
			return true
		})
	})
	return diags
}

// allocKind classifies e as a fresh allocation for tracking.
func allocKind(p *Package, e ast.Expr) (escKind, bool) {
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, isLit := x.X.(*ast.CompositeLit); isLit {
				return escRef, true
			}
		}
	case *ast.CompositeLit:
		if allocatingLit(p, x) {
			return escRef, true // slice/map literal: x holds the reference
		}
		return escVal, true
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") && isBuiltin(p.Info, id) {
			return escRef, true
		}
	}
	return 0, false
}

// escRefUse is one appearance of a tracked variable in escape position.
type escRefUse struct {
	v    *types.Var
	name string
}

// escapingRefs finds tracked variables that e would leak if e reaches a
// heap-bound destination: x itself (reference kinds), &x (any kind), a
// composite literal carrying either, or append(..., x, ...).  Reading
// an element of x, slicing it, or passing it to len/cap stays private
// and is deliberately not matched.
func escapingRefs(p *Package, tracked map[*types.Var]escVar, e ast.Expr) []escRefUse {
	var out []escRefUse
	add := func(id *ast.Ident, needAddr bool) {
		v, _ := p.Info.Uses[id].(*types.Var)
		if v == nil {
			return
		}
		ev, ok := tracked[v]
		if !ok || (ev.kind == escVal && !needAddr) {
			return
		}
		name := id.Name
		if needAddr {
			name = "&" + name
		}
		out = append(out, escRefUse{v: v, name: name})
	}
	switch x := e.(type) {
	case *ast.Ident:
		add(x, false)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if id, ok := x.X.(*ast.Ident); ok {
				add(id, true)
			}
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = append(out, escapingRefs(p, tracked, elt)...)
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(p.Info, id) {
			for _, arg := range x.Args[1:] {
				out = append(out, escapingRefs(p, tracked, arg)...)
			}
		}
	}
	return out
}

// storeOutlivesLoop decides whether assigning into lhs escapes the
// given loop: struct fields, dereferences, and map/slice elements are
// heap-reachable, and a plain variable outlives the iteration when its
// declaration precedes the loop.
func storeOutlivesLoop(p *Package, lhs ast.Expr, loop ast.Stmt) (string, bool) {
	switch x := lhs.(type) {
	case *ast.SelectorExpr:
		return "field " + exprKey(x), true
	case *ast.IndexExpr:
		return "element of " + exprKey(x.X), true
	case *ast.StarExpr:
		return "dereference of " + exprKey(x.X), true
	case *ast.Ident:
		v, _ := p.Info.Uses[x].(*types.Var)
		if v == nil {
			return "", false
		}
		if loop == nil || !enclosesPos(loop, v.Pos()) {
			return "outer variable " + x.Name, true
		}
	}
	return "", false
}

// unknownCallee reports whether the call's target is outside the
// analyzer's view — a function from another package, or a dynamic call
// through a func value or interface — returning a printable name.
// Builtins and type conversions are known quantities and exempt.
func unknownCallee(p *Package, call *ast.CallExpr) (string, bool) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return "", false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(p.Info, id) {
		return "", false
	}
	callee := calleeOf(p.Info, call)
	if callee == nil {
		return "a dynamic call " + exprKey(call.Fun), true
	}
	if callee.Pkg() != nil && p.Types != nil && callee.Pkg() == p.Types {
		return "", false
	}
	return callee.FullName(), true
}
