package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the hot-path marking the allocation-discipline
// rules (hotalloc, preallocate, iface-box, mapkey, escapes) build on.
//
// A function is declared hot by a //keyedeq:hot directive in its doc
// comment — the justification after "--" is mandatory, exactly as for
// //keyedeq:allow:
//
//	//keyedeq:hot -- per-wave worklist drain of the semi-naive chase
//	func (t *Tableau) RunCtx(...)
//
// Hotness then propagates caller-to-callee through the same-package
// static call graph to a fixpoint (the interprocedural-lite machinery
// the poll summaries use): everything a hot function reaches inside its
// package is hot too, so helpers factored out of a hot loop stay under
// the allocation rules without their own annotations.
//
// A bare //keyedeq:hot (no justification) or one carrying arguments is
// a malformed directive, reported under the pseudo-rule "directive".  A
// well-formed hot directive attached to anything but a function
// declaration — a var/const/type declaration, or orphaned between
// declarations — is reported under the pseudo-rule "baddirective"
// instead of being silently ignored.

// ParseHotDirective parses one comment's text as a //keyedeq:hot
// directive.  It returns any stray arguments before "--" (a hot marker
// takes none; their presence is a malformation) and the justification
// after it, with ok reporting whether the comment is a hot directive at
// all.
func ParseHotDirective(comment string) (args []string, reason string, ok bool) {
	text, ok := strings.CutPrefix(comment, "//keyedeq:hot")
	if !ok {
		return nil, "", false
	}
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		// "//keyedeq:hotter" is not a directive.
		return nil, "", false
	}
	before, reason, _ := strings.Cut(text, "--")
	return strings.Fields(before), strings.TrimSpace(reason), true
}

// hotFuncs returns the package's hot-function set: directive-marked
// declarations plus everything they transitively call inside the
// package.  The result is memoized on the Package; the companion
// directive findings are served by hotDirectiveFindings.  Not safe for
// concurrent use (rules run sequentially over a package).
func (p *Package) hotFuncs() map[*types.Func]bool {
	p.ensureHot()
	return p.hotSet
}

// hotDirectiveFindings returns the malformation/misattachment findings
// collected while resolving //keyedeq:hot directives.
func (p *Package) hotDirectiveFindings() []Diagnostic {
	p.ensureHot()
	return p.hotBad
}

func (p *Package) ensureHot() {
	if p.hotDone {
		return
	}
	p.hotDone = true
	p.hotSet, p.hotBad = computeHot(p)
}

// computeHot resolves the hot directives and runs the caller-to-callee
// fixpoint over the same-package call graph.
func computeHot(p *Package) (map[*types.Func]bool, []Diagnostic) {
	decls := funcDecls(p)
	seeds, bad := collectHotMarks(p, decls)

	// Same-package static call edges, caller -> callees.
	calls := make(map[*types.Func][]*types.Func, len(decls))
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(p.Info, call); callee != nil {
				if _, local := decls[callee]; local {
					calls[obj] = append(calls[obj], callee)
				}
			}
			return true
		})
	}

	hot := seeds
	// Fixpoint: hotness flows from caller to callee — the opposite
	// direction of the poll summaries, whose property (reaching a poll)
	// flows callee to caller.  The call graphs here are tiny.
	for changed := true; changed; {
		changed = false
		for obj, callees := range calls {
			if !hot[obj] {
				continue
			}
			for _, c := range callees {
				if !hot[c] {
					hot[c] = true
					changed = true
				}
			}
		}
	}
	return hot, bad
}

// collectHotMarks gathers the //keyedeq:hot seeds and the findings for
// malformed or misattached directives.
func collectHotMarks(p *Package, decls map[*types.Func]*ast.FuncDecl) (map[*types.Func]bool, []Diagnostic) {
	seeds := make(map[*types.Func]bool)
	var bad []Diagnostic
	for _, f := range p.Files {
		funcDocOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
		otherDoc := make(map[*ast.CommentGroup]string)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					funcDocOf[d.Doc] = d
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					otherDoc[d.Doc] = d.Tok.String() + " declaration"
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				args, reason, ok := ParseHotDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				switch {
				case reason == "":
					bad = append(bad, Diagnostic{
						Rule:    "directive",
						Pos:     pos,
						Message: "hot marker without justification; write //keyedeq:hot -- <why this path is hot>",
					})
					continue
				case len(args) > 0:
					bad = append(bad, Diagnostic{
						Rule:    "directive",
						Pos:     pos,
						Message: fmt.Sprintf("hot marker takes no arguments (got %q); write //keyedeq:hot -- <reason>", strings.Join(args, " ")),
					})
					continue
				}
				fd, attached := funcDocOf[cg]
				if !attached {
					where := "orphaned between declarations"
					if kind, onDecl := otherDoc[cg]; onDecl {
						where = "attached to a " + kind
					}
					bad = append(bad, Diagnostic{
						Rule:    "baddirective",
						Pos:     pos,
						Message: fmt.Sprintf("//keyedeq:hot must be in a function declaration's doc comment (%s); it marks no code hot here", where),
					})
					continue
				}
				if obj, isFn := p.Info.Defs[fd.Name].(*types.Func); isFn {
					seeds[obj] = true
				}
			}
		}
	}
	return seeds, bad
}

// hotWalk is the shared traversal the allocation rules use: it walks a
// hot function's body tracking the enclosing-loop chain and reports,
// for every node, whether it lies in an allocation-hot region.  A
// region is hot when some enclosing loop either ranges over
// tuple/relation data or is itself nested inside another loop; a single
// non-tuple loop at a function's top level is setup-shaped (one pass
// per dependency, per atom, per component) and allocation there is
// proportional to the problem description, not the data.
//
// Function literals break the chain: their bodies run when called, not
// per enclosing-loop iteration, so a literal's interior starts cold —
// but the literal node itself is still reported with the enclosing
// region's hotness (creating a closure per iteration is an allocation).
type hotWalk struct {
	p *Package
	// loops is the chain of enclosing loop statements.
	loops []ast.Stmt
	// tupleDepth counts enclosing loops that range over tuple data.
	tupleDepth int
}

// regionHot reports whether the current position is allocation-hot.
func (w *hotWalk) regionHot() bool {
	return len(w.loops) >= 2 || w.tupleDepth > 0
}

// walk visits n and its children, calling visit(node, hot) for every
// node.  visit returning false prunes the subtree (the loop/literal
// bookkeeping still applies to pruned loops' children — pruning is for
// claimed nodes, which have no loops under them in practice).
func (w *hotWalk) walk(n ast.Node, visit func(n ast.Node, hot bool) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		switch x := c.(type) {
		case *ast.ForStmt:
			if !visit(x, w.regionHot()) {
				return false
			}
			w.loops = append(w.loops, x)
			if x.Init != nil {
				w.walk(x.Init, visit)
			}
			if x.Cond != nil {
				w.walk(x.Cond, visit)
			}
			if x.Post != nil {
				w.walk(x.Post, visit)
			}
			w.walk(x.Body, visit)
			w.loops = w.loops[:len(w.loops)-1]
			return false
		case *ast.RangeStmt:
			if !visit(x, w.regionHot()) {
				return false
			}
			w.walk(x.X, visit)
			w.loops = append(w.loops, x)
			tuples := rangesOverTuples(w.p, x)
			if tuples {
				w.tupleDepth++
			}
			w.walk(x.Body, visit)
			if tuples {
				w.tupleDepth--
			}
			w.loops = w.loops[:len(w.loops)-1]
			return false
		case *ast.FuncLit:
			if !visit(x, w.regionHot()) {
				return false
			}
			inner := &hotWalk{p: w.p}
			inner.walk(x.Body, visit)
			return false
		}
		return visit(c, w.regionHot())
	})
}

// innermostLoop returns the closest enclosing loop statement, or nil.
func (w *hotWalk) innermostLoop() ast.Stmt {
	if len(w.loops) == 0 {
		return nil
	}
	return w.loops[len(w.loops)-1]
}

// enclosesPos reports whether node n's source span contains pos.
func enclosesPos(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos <= n.End()
}

// eachHotFunc visits every declared function of the package that the
// hot set marks, in file order.
func eachHotFunc(p *Package, visit func(fd *ast.FuncDecl)) {
	hot := p.hotFuncs()
	if len(hot) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, isFn := p.Info.Defs[fd.Name].(*types.Func); isFn && hot[obj] {
				visit(fd)
			}
		}
	}
}

// pointerShaped reports whether values of t fit in one machine word
// when stored in an interface (pointers, maps, channels, functions):
// converting them to an interface type copies the word and allocates
// nothing.  Everything else is boxed onto the heap.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// coldSpans collects the source spans of return statements under body.
// An allocation inside a return runs at most once before control leaves
// the loop (the error-exit shape), so the per-iteration rules skip
// those spans.
func coldSpans(body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			spans = append(spans, [2]token.Pos{r.Pos(), r.End()})
		}
		return true
	})
	return spans
}

// posInSpans reports whether pos falls inside any collected span.
func posInSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if s[0] <= pos && pos <= s[1] {
			return true
		}
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPkgCall reports whether call is pkgBase.<anything>(...) for an
// imported package whose name is pkgBase (lenient: an unresolved
// identifier spelled like the package still counts, matching the
// resolvesToPkg convention).
func isPkgCall(p *Package, call *ast.CallExpr, pkgBase string, paths ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgBase {
		return false
	}
	return resolvesToPkg(p.Info, id, paths...)
}
