package analysis

import "testing"

func TestNoRandFlagsGlobalAndConstructedRandomness(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/chase", "norand/bad.go", NoRand{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "norand/bad.go", got, want)
}

func TestNoRandAcceptsInjectedGenerator(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/chase", "norand/good.go", NoRand{})
	expectFindings(t, "norand/good.go", got, nil)
}

func TestNoRandExemptsExperimentAndCommandLayers(t *testing.T) {
	for _, path := range []string{"keyedeq/internal/exp", "keyedeq/cmd/keyedeq-bench", "keyedeq/examples/quickstart"} {
		got, _ := checkFixture(t, path, "norand/bad.go", NoRand{})
		if len(got) != 0 {
			t.Errorf("%s: %d finding(s) in an exempt package; first: %s", path, len(got), got[0])
		}
	}
}
