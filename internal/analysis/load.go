package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LoadModule parses and type-checks every non-test package under the
// module rooted at root (the directory containing go.mod).  Loading is
// lenient: type errors and unresolvable imports degrade the available
// type information instead of failing the load, so the analyzer can run
// on a partially broken tree.
//
// Type-checking runs concurrently, bounded by GOMAXPROCS: each package
// waits only for its module-internal imports (by done-channel, so the
// schedule follows the dependency DAG, not a serial topological walk),
// and non-module imports are served by a process-global memoized source
// importer — the dominant cost of a load is resolving the standard
// library from source, and it is paid at most once per process.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		checked: make(map[string]*Package),
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*parsedPkg) // by import path
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		p.importPath = modPath
		if rel != "." {
			p.importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		parsed[p.importPath] = p
	}

	order := topoOrder(parsed)
	// rank breaks would-be wait cycles: a package only waits for deps
	// that precede it in topological order.  Go forbids import cycles,
	// but a broken tree must degrade, not deadlock the loader.
	rank := make(map[string]int, len(order))
	done := make(map[string]chan struct{}, len(order))
	for i, ip := range order {
		rank[ip] = i
		done[ip] = make(chan struct{})
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, ip := range order {
		wg.Add(1)
		go func(ip string) {
			defer wg.Done()
			defer close(done[ip])
			for _, dep := range parsed[ip].imports {
				if _, internal := parsed[dep]; internal && rank[dep] < rank[ip] {
					<-done[dep]
				}
			}
			// Take a slot only once the deps are in, so waiting
			// packages never starve running ones.
			sem <- struct{}{}
			defer func() { <-sem }()
			pkg := l.check(parsed[ip])
			l.mu.Lock()
			l.checked[ip] = pkg
			l.mu.Unlock()
		}(ip)
	}
	wg.Wait()

	out := make([]*Package, 0, len(order))
	for _, ip := range order {
		out = append(out, l.checked[ip])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

type parsedPkg struct {
	importPath string
	dir        string
	files      []*ast.File
	imports    []string
}

type loader struct {
	fset    *token.FileSet
	mu      sync.Mutex
	checked map[string]*Package // module packages, by import path
}

// Import implements types.Importer: module-internal packages come from
// the already-checked set (the load schedule guarantees a package's
// internal deps finished before its own check starts); everything else
// comes from the process-global source-import cache.
func (l *loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	p, ok := l.checked[path]
	l.mu.Unlock()
	if ok {
		return p.Types, nil
	}
	return sourceImports.Import(path)
}

// sourceImports memoizes source-imported non-module packages for the
// whole process.  Repeated loads (the lint driver, every fixture test,
// the self-application test) each used to re-type-check the standard
// library from scratch; now only the first importer of a path pays.
// The cache keeps its own FileSet: positions inside imported sources
// are never reported by the analyzer, only module positions are.
var sourceImports = &importCache{pkgs: make(map[string]*types.Package)}

type importCache struct {
	mu   sync.Mutex
	fset *token.FileSet
	imp  types.Importer
	pkgs map[string]*types.Package
}

// Import resolves path from source, memoized; failures become empty
// stub packages (the lenient checker records errors against them and
// moves on).  The lock also serializes the underlying source importer,
// which is not safe for concurrent use.
func (c *importCache) Import(path string) (*types.Package, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	if c.imp == nil {
		c.fset = token.NewFileSet()
		c.imp = importer.ForCompiler(c.fset, "source", nil)
	}
	p, err := c.imp.Import(path)
	if err != nil || p == nil {
		p = types.NewPackage(path, pathBase(path))
	}
	c.pkgs[path] = p
	return p, nil
}

func (l *loader) parseDir(dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &parsedPkg{dir: dir}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// A file the toolchain would reject: report it, it cannot
			// be analyzed meaningfully.
			return nil, fmt.Errorf("analysis: %v", err)
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[ip] {
				continue
			}
			seen[ip] = true
			p.imports = append(p.imports, ip)
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	return p, nil
}

func (l *loader) check(p *parsedPkg) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // lenient: keep going, info stays partial
	}
	//keyedeq:allow errdrop -- lenient load: type errors degrade info, they must not abort analysis
	tp, _ := conf.Check(p.importPath, l.fset, p.files, info)
	if tp == nil {
		tp = types.NewPackage(p.importPath, pathBase(p.importPath))
	}
	return &Package{
		ImportPath: p.importPath,
		Dir:        p.dir,
		Fset:       l.fset,
		Files:      p.files,
		Types:      tp,
		Info:       info,
	}
}

// topoOrder sorts module packages so every package follows its
// module-internal imports.  Cycles (illegal in Go anyway) fall back to
// path order.
func topoOrder(pkgs map[string]*parsedPkg) []string {
	paths := make([]string, 0, len(pkgs))
	for ip := range pkgs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(ip string) {
		if state[ip] != 0 {
			return
		}
		state[ip] = 1
		for _, dep := range pkgs[ip].imports {
			if _, ok := pkgs[dep]; ok && state[dep] == 0 {
				visit(dep)
			}
		}
		state[ip] = 2
		order = append(order, ip)
	}
	for _, ip := range paths {
		visit(ip)
	}
	return order
}

// packageDirs lists directories under root that may hold Go packages.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: cannot read %s: %v", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			if q, err := strconv.Unquote(mp); err == nil {
				mp = q
			}
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// buildIncluded evaluates a file's //go:build constraint (if any) for a
// plain release build on the current platform: keyedeq_debug and other
// custom tags are off.
func buildIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || strings.HasPrefix(tag, "go1")
			})
		}
		// Constraints must precede the package clause.
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
	}
	return true
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
