package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder checks the two mutex disciplines the sharded cache and the
// obs registry stripes rely on:
//
//  1. Balance: every Lock/RLock acquired in a function is released on
//     every return path (an Unlock on the same expression, or a defer),
//     a lock is not re-acquired while held (self-deadlock), and loop
//     bodies are lock-neutral.
//  2. Order: the package-wide nesting relation between lock *classes*
//     (type.field for field mutexes, package.var for globals) is
//     acyclic, including nesting that happens through a same-package
//     call made while a lock is held.  A cycle is a potential deadlock
//     between concurrent goroutines taking the classes in opposite
//     orders.
type LockOrder struct{}

func (LockOrder) Name() string { return "lockorder" }

func (LockOrder) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	sums := lockSummaries(p)
	edges := make(map[string]map[string]token.Position)
	for _, f := range p.Files {
		eachFuncBody(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl) {
			w := &lockWalker{p: p, fn: name, sums: sums, edges: edges}
			terminated := w.stmts(body.List)
			if !terminated {
				w.checkReturn(body.End())
			}
			diags = append(diags, w.diags...)
		})
	}
	diags = append(diags, lockCycles(edges)...)
	return diags
}

// lockCall classifies a statement as a mutex operation, returning the
// per-function key, the package-wide class, and the operation name.
func lockCall(p *Package, call *ast.CallExpr) (key, class, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	if !isMutexish(p.Info.TypeOf(sel.X)) {
		return "", "", "", false
	}
	key = exprKey(sel.X)
	if strings.HasPrefix(sel.Sel.Name, "R") {
		key += "#r"
	}
	return key, lockClass(p, sel.X), sel.Sel.Name, true
}

// isMutexish accepts sync.Mutex/RWMutex and any named type providing
// both Lock and Unlock (an embedded or wrapped mutex).
func isMutexish(t types.Type) bool {
	if t == nil {
		return false
	}
	if typeIs(t, "sync", "Mutex") || typeIs(t, "sync", "RWMutex") {
		return true
	}
	n := namedOf(t)
	if n == nil {
		return false
	}
	has := func(name string) bool {
		obj, _, _ := types.LookupFieldOrMethod(n, true, n.Obj().Pkg(), name)
		_, isFn := obj.(*types.Func)
		return isFn
	}
	return has("Lock") && has("Unlock")
}

// lockClass names the package-wide class of a lock expression: the
// owning struct type and field for field mutexes ("cacheShard.mu"),
// the package-level variable name for globals, or "" for locals (which
// take part in balance checking but not in the global order).
func lockClass(p *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if n := namedOf(sel.Recv()); n != nil && n.Obj() != nil {
				return n.Obj().Name() + "." + x.Sel.Name
			}
		}
		return ""
	case *ast.Ident:
		if obj, ok := p.Info.Uses[x].(*types.Var); ok && obj.Parent() == p.Types.Scope() {
			return "var " + x.Name
		}
	case *ast.ParenExpr:
		return lockClass(p, x.X)
	case *ast.UnaryExpr:
		return lockClass(p, x.X)
	case *ast.IndexExpr:
		return lockClass(p, x.X)
	}
	return ""
}

// lockSummaries maps each declared function to the set of lock classes
// its body (transitively, through same-package calls) may acquire.
func lockSummaries(p *Package) map[*types.Func]map[string]bool {
	decls := funcDecls(p)
	sums := make(map[*types.Func]map[string]bool, len(decls))
	calls := make(map[*types.Func][]*types.Func, len(decls))
	for obj, fd := range decls {
		set := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, class, op, isLock := lockCall(p, call); isLock {
				if class != "" && (op == "Lock" || op == "RLock") {
					set[class] = true
				}
				return true
			}
			if callee := calleeOf(p.Info, call); callee != nil {
				if _, local := decls[callee]; local {
					calls[obj] = append(calls[obj], callee)
				}
			}
			return true
		})
		sums[obj] = set
	}
	for changed := true; changed; {
		changed = false
		for obj, callees := range calls {
			for _, c := range callees {
				for class := range sums[c] {
					if !sums[obj][class] {
						sums[obj][class] = true
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// heldLock is one acquisition on the current path.
type heldLock struct {
	key      string
	class    string
	pos      token.Position
	deferred bool // released by a registered defer
}

type lockWalker struct {
	p     *Package
	fn    string
	sums  map[*types.Func]map[string]bool
	edges map[string]map[string]token.Position
	held  []heldLock
	diags []Diagnostic
}

func (w *lockWalker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			w.call(call)
		}
	case *ast.DeferStmt:
		if key, _, op, ok := lockCall(w.p, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			for i := range w.held {
				if w.held[i].key == key {
					w.held[i].deferred = true
				}
			}
		}
	case *ast.ReturnStmt:
		w.checkReturn(st.Pos())
		return true
	case *ast.BranchStmt:
		return st.Tok == token.GOTO || st.Tok == token.BREAK || st.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return w.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.exprCalls(st.Cond)
		saved := w.save()
		termThen := w.stmts(st.Body.List)
		afterThen := w.save()
		w.restoreHeld(saved)
		termElse := false
		if st.Else != nil {
			termElse = w.stmt(st.Else)
		}
		afterElse := w.save()
		switch {
		case termThen && termElse:
			return true
		case termThen:
			w.restoreHeld(afterElse)
		case termElse:
			w.restoreHeld(afterThen)
		default:
			// Keep only locks held in both branches (intersection by
			// key) — asymmetric holds across a join are beyond this
			// walker's precision, so stay quiet about them.
			w.restoreHeld(intersectHeld(afterThen, afterElse))
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.exprCalls(st.Cond)
		w.loopBody(st.Body)
	case *ast.RangeStmt:
		w.exprCalls(st.X)
		w.loopBody(st.Body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.clauses(st)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.exprCalls(r)
		}
	case *ast.GoStmt:
		// The spawned goroutine runs under its own discipline.
	}
	return false
}

// call processes one call expression: a mutex op updates the held set;
// any other call while holding locks records nesting edges from the
// callee's summary, and nested calls in arguments are visited first.
func (w *lockWalker) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.exprCalls(a)
	}
	key, class, op, ok := lockCall(w.p, call)
	if !ok {
		w.nestingEdges(call)
		return
	}
	pos := w.p.Fset.Position(call.Pos())
	switch op {
	case "Lock", "RLock":
		for _, h := range w.held {
			if h.key == key && op == "Lock" {
				w.diags = append(w.diags, Diagnostic{
					Rule:    "lockorder",
					Pos:     pos,
					Message: fmt.Sprintf("%s acquired at %s is still held here; re-locking deadlocks", renderLock(key), h.pos),
				})
			}
			if h.class != "" && class != "" && h.class != class {
				w.addEdge(h.class, class, pos)
			}
		}
		w.held = append(w.held, heldLock{key: key, class: class, pos: pos})
	case "Unlock", "RUnlock":
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i].key == key {
				w.held = append(w.held[:i], w.held[i+1:]...)
				return
			}
		}
		// Releasing a lock this path never acquired: the caller may
		// hold it (an unlock helper) — out of scope, stay quiet.
	}
}

// nestingEdges records held-class → callee-acquired-class edges for
// same-package calls made while locks are held.
func (w *lockWalker) nestingEdges(call *ast.CallExpr) {
	if len(w.held) == 0 {
		return
	}
	callee := calleeOf(w.p.Info, call)
	if callee == nil {
		return
	}
	acquired, ok := w.sums[callee]
	if !ok {
		return
	}
	pos := w.p.Fset.Position(call.Pos())
	for _, h := range w.held {
		if h.class == "" {
			continue
		}
		for class := range acquired {
			if class != h.class {
				w.addEdge(h.class, class, pos)
			}
		}
	}
}

func (w *lockWalker) addEdge(from, to string, pos token.Position) {
	m := w.edges[from]
	if m == nil {
		m = make(map[string]token.Position)
		w.edges[from] = m
	}
	if _, seen := m[to]; !seen {
		m[to] = pos
	}
}

// exprCalls visits calls nested in an expression (lock ops hidden in
// conditions or arguments still count).
func (w *lockWalker) exprCalls(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.call(call)
			return false
		}
		return true
	})
}

// checkReturn reports locks still held (and not defer-released) at a
// return point.
func (w *lockWalker) checkReturn(at token.Pos) {
	for _, h := range w.held {
		if !h.deferred {
			w.diags = append(w.diags, Diagnostic{
				Rule:    "lockorder",
				Pos:     h.pos,
				Message: fmt.Sprintf("%s is not released on the return path at line %d; unlock it or defer the unlock", renderLock(h.key), w.p.Fset.Position(at).Line),
			})
		}
	}
}

// loopBody requires lock-neutrality: the body walked alone must leave
// the held set unchanged.
func (w *lockWalker) loopBody(body *ast.BlockStmt) {
	saved := w.save()
	term := w.stmts(body.List)
	if !term {
		if after := w.save(); !sameHeldKeys(saved, after) {
			w.diags = append(w.diags, Diagnostic{
				Rule:    "lockorder",
				Pos:     w.p.Fset.Position(body.Pos()),
				Message: fmt.Sprintf("loop body in %s changes which locks are held across iterations; acquire and release within one iteration", w.fn),
			})
		}
	}
	w.restoreHeld(saved)
}

func (w *lockWalker) clauses(s ast.Stmt) {
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.exprCalls(st.Tag)
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		body = st.Body
	case *ast.SelectStmt:
		body = st.Body
	}
	saved := w.save()
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm)
			}
			list = c.Body
		}
		w.stmts(list)
		w.restoreHeld(saved)
	}
}

func (w *lockWalker) save() []heldLock {
	return append([]heldLock(nil), w.held...)
}

func (w *lockWalker) restoreHeld(h []heldLock) {
	w.held = append(w.held[:0], h...)
}

func intersectHeld(a, b []heldLock) []heldLock {
	var out []heldLock
	for _, h := range a {
		for _, g := range b {
			if h.key == g.key {
				out = append(out, h)
				break
			}
		}
	}
	return out
}

func sameHeldKeys(a, b []heldLock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key != b[i].key {
			return false
		}
	}
	return true
}

func renderLock(key string) string {
	if r, ok := strings.CutSuffix(key, "#r"); ok {
		return r + ".RLock()"
	}
	return key + ".Lock()"
}

// lockCycles reports one diagnostic per 2-node cycle in the package's
// nesting relation (longer cycles reduce to reporting each back edge a
// DFS finds).
func lockCycles(edges map[string]map[string]token.Position) []Diagnostic {
	var diags []Diagnostic
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		tos := make([]string, 0, len(edges[n]))
		for to := range edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch color[to] {
			case gray:
				diags = append(diags, Diagnostic{
					Rule:    "lockorder",
					Pos:     edges[n][to],
					Message: fmt.Sprintf("lock nesting cycle: %s is acquired while %s is held, and elsewhere the other way around; pick one global order", to, n),
				})
			case white:
				visit(to)
			}
		}
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
	return diags
}
