package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedDirectivesAreFindings checks that a directive with no
// "--" justification, or one naming no known rule, is reported under
// the pseudo-rule "directive" and does not suppress anything.
func TestMalformedDirectivesAreFindings(t *testing.T) {
	got, wantPanic := checkFixture(t, "keyedeq/internal/fixture", "directive_bad.go", PanicGate{})
	if len(wantPanic) == 0 {
		t.Fatal("fixture declares no panicgate want-lines")
	}
	src, err := os.ReadFile(filepath.Join("testdata", "src", "directive_bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantDir := wantLines(string(src), "directive")
	if len(wantDir) == 0 {
		t.Fatal("fixture declares no directive want-lines")
	}
	expectFindings(t, "directive_bad.go", got, append(wantPanic, wantDir...))
}

// TestMisattachedDirectivesAreFindings checks that well-formed
// directives that can take no effect — a hot marker outside a function
// doc comment, an allow with no code on its line or the next — are
// reported under the pseudo-rule "baddirective", while a correctly
// attached hot marker stays silent.
func TestMisattachedDirectivesAreFindings(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "directive_badattach.go", PanicGate{})
	src, err := os.ReadFile(filepath.Join("testdata", "src", "directive_badattach.go"))
	if err != nil {
		t.Fatal(err)
	}
	want := wantLines(string(src), "baddirective")
	if len(want) != 3 {
		t.Fatalf("fixture declares %d baddirective want-lines, want 3", len(want))
	}
	expectFindings(t, "directive_badattach.go", got, want)
	for _, d := range got {
		if d.Rule != "baddirective" {
			t.Errorf("finding under rule %q, want baddirective: %s", d.Rule, d)
		}
	}
}

// FuzzAllowDirective checks the directive parser never panics and
// upholds its contract on arbitrary comment text.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//keyedeq:allow detmap -- sorted upstream")
	f.Add("//keyedeq:allow detmap norand -- both fine here")
	f.Add("//keyedeq:allow")
	f.Add("//keyedeq:allow ")
	f.Add("//keyedeq:allowx detmap -- not a directive")
	f.Add("// keyedeq:allow detmap -- not a directive either")
	f.Add("//keyedeq:allow detmap")
	f.Add("//keyedeq:allow -- reason with no rules")
	f.Add("//keyedeq:allow a b -- x -- y")
	f.Add("//keyedeq:allow\tdetmap\t--\ttabbed")
	f.Fuzz(func(t *testing.T, s string) {
		rules, reason, ok := ParseAllowDirective(s)
		if !ok {
			if len(rules) != 0 || reason != "" {
				t.Fatalf("non-directive %q returned rules=%v reason=%q", s, rules, reason)
			}
			return
		}
		if !strings.HasPrefix(s, "//keyedeq:allow") {
			t.Fatalf("%q accepted as a directive without the prefix", s)
		}
		for _, r := range rules {
			if r == "" || strings.ContainsAny(r, " \t\n") || strings.Contains(r, "--") {
				t.Fatalf("%q produced malformed rule name %q", s, r)
			}
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("%q produced untrimmed reason %q", s, reason)
		}
		// Rebuilding a directive from the parsed parts must parse back
		// to the same parts.
		if len(rules) > 0 && reason != "" && !strings.ContainsAny(reason, "\n\r") {
			rebuilt := "//keyedeq:allow " + strings.Join(rules, " ") + " -- " + reason
			rules2, reason2, ok2 := ParseAllowDirective(rebuilt)
			if !ok2 || reason2 != reason || strings.Join(rules2, " ") != strings.Join(rules, " ") {
				t.Fatalf("round trip of %q via %q gave rules=%v reason=%q ok=%v",
					s, rebuilt, rules2, reason2, ok2)
			}
		}
	})
}

// FuzzHotDirective checks the hot-marker parser never panics and
// upholds its contract on arbitrary comment text, mirroring
// FuzzAllowDirective.
func FuzzHotDirective(f *testing.F) {
	f.Add("//keyedeq:hot -- per-wave worklist drain")
	f.Add("//keyedeq:hot")
	f.Add("//keyedeq:hot ")
	f.Add("//keyedeq:hotter -- not a directive")
	f.Add("// keyedeq:hot -- not a directive either")
	f.Add("//keyedeq:hot stray args -- args are malformed")
	f.Add("//keyedeq:hot -- reason -- with -- dashes")
	f.Add("//keyedeq:hot\t--\ttabbed reason")
	f.Add("//keyedeq:hot --")
	f.Fuzz(func(t *testing.T, s string) {
		args, reason, ok := ParseHotDirective(s)
		if !ok {
			if len(args) != 0 || reason != "" {
				t.Fatalf("non-directive %q returned args=%v reason=%q", s, args, reason)
			}
			return
		}
		if !strings.HasPrefix(s, "//keyedeq:hot") {
			t.Fatalf("%q accepted as a directive without the prefix", s)
		}
		for _, a := range args {
			if a == "" || strings.ContainsAny(a, " \t\n") || strings.Contains(a, "--") {
				t.Fatalf("%q produced malformed arg %q", s, a)
			}
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("%q produced untrimmed reason %q", s, reason)
		}
		// A well-formed marker rebuilt from its parts must parse back to
		// the same parts.
		if len(args) == 0 && reason != "" && !strings.ContainsAny(reason, "\n\r") && !strings.Contains(reason, "--") {
			rebuilt := "//keyedeq:hot -- " + reason
			args2, reason2, ok2 := ParseHotDirective(rebuilt)
			if !ok2 || len(args2) != 0 || reason2 != reason {
				t.Fatalf("round trip of %q via %q gave args=%v reason=%q ok=%v",
					s, rebuilt, args2, reason2, ok2)
			}
		}
	})
}
