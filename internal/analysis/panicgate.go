package analysis

import (
	"go/ast"
)

// PanicGate routes every panic in internal packages through
// internal/invariant.  A raw panic(...) carries no Violation payload,
// so recovering callers cannot distinguish an invariant failure from a
// stray bug, and the panic site is invisible to the debug-tag
// machinery.  internal/invariant itself is the gate and is exempt.
type PanicGate struct{}

// Name implements Rule.
func (PanicGate) Name() string { return "panicgate" }

// Check implements Rule.
func (PanicGate) Check(p *Package) []Diagnostic {
	if !inDirs(p.ImportPath, "internal") || inDirs(p.ImportPath, "internal/invariant") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" || !isBuiltin(p.Info, id) {
				return true
			}
			out = append(out, Diagnostic{
				Rule:    "panicgate",
				Pos:     p.Fset.Position(call.Pos()),
				Message: "raw panic in internal package; use invariant.Must/Mustf (or Assert for debug-only checks)",
			})
			return true
		})
	}
	return out
}
