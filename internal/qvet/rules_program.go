package qvet

import "keyedeq/internal/value"

// Program-level rules over the lenient def/rule representation.  They
// re-establish exactly what program.Parse enforces fatally — here as
// individually positioned, suppressible findings, so one bad stratum
// does not hide the rest of the file.

// defIndex maps view names to their first declaration index.
func defIndex(u *Unit) map[string]int {
	byName := make(map[string]int, len(u.Defs))
	for i, d := range u.Defs {
		if _, dup := byName[d.Rel.Name]; !dup {
			byName[d.Rel.Name] = i
		}
	}
	return byName
}

// ViewStrat reports stratification breaks in a program: rules whose
// head names no declared view, views declared but never defined, and
// rule bodies using the rule's own view or a later one.  Non-recursive
// Datalog (the paper's program language, and the precondition for
// Unfold's reduction to UCQ equivalence) requires each stratum to read
// only the layers below it.
type ViewStrat struct{}

// Name implements Rule.
func (ViewStrat) Name() string { return "viewstrat" }

// Check implements Rule.
func (ViewStrat) Check(u *Unit) []Diagnostic {
	if u.Kind != KindProgram {
		return nil
	}
	var out []Diagnostic
	byName := defIndex(u)
	defined := make(map[string]bool)
	for _, q := range u.Rules {
		stratum, ok := byName[q.HeadRel]
		if !ok {
			out = append(out, u.diag("viewstrat", q.Pos,
				"rule for undeclared view %q", q.HeadRel))
			continue
		}
		defined[q.HeadRel] = true
		for _, a := range q.Body {
			used, isView := byName[a.Rel]
			if !isView {
				continue
			}
			switch {
			case used == stratum:
				out = append(out, u.diag("viewstrat", atomPos(q, a),
					"view %q uses itself; programs must be non-recursive", a.Rel))
			case used > stratum:
				out = append(out, u.diag("viewstrat", atomPos(q, a),
					"view %q is declared after %q; rules may use earlier strata only", a.Rel, q.HeadRel))
			}
		}
	}
	for _, d := range u.Defs {
		if !defined[d.Rel.Name] {
			out = append(out, u.diag("viewstrat", d.Pos,
				"view %q has no rules", d.Rel.Name))
		}
	}
	return out
}

// ViewShadow reports view declarations that shadow a base relation or
// re-declare an earlier view, and views declaring a key (derived
// relations carry no dependencies in the paper's model — keys on views
// are what Theorem 6's FD-transfer *derives*, never declares).
type ViewShadow struct{}

// Name implements Rule.
func (ViewShadow) Name() string { return "viewshadow" }

// Check implements Rule.
func (ViewShadow) Check(u *Unit) []Diagnostic {
	if u.Kind != KindProgram {
		return nil
	}
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, d := range u.Defs {
		if u.Schema != nil && u.Schema.Relation(d.Rel.Name) != nil {
			out = append(out, u.diag("viewshadow", d.Pos,
				"view %q shadows a base relation", d.Rel.Name))
		}
		if seen[d.Rel.Name] {
			out = append(out, u.diag("viewshadow", d.Pos,
				"view %q declared twice", d.Rel.Name))
		}
		seen[d.Rel.Name] = true
		if d.Rel.Keyed() {
			out = append(out, u.diag("viewshadow", d.Pos,
				"derived relation %q cannot declare a key", d.Rel.Name))
		}
	}
	return out
}

// ViewType reports rules whose head does not fit the declared view
// scheme: wrong arity, or a head position whose inferred type differs
// from the scheme's attribute type.
type ViewType struct{}

// Name implements Rule.
func (ViewType) Name() string { return "viewtype" }

// Check implements Rule.
func (ViewType) Check(u *Unit) []Diagnostic {
	if u.Kind != KindProgram {
		return nil
	}
	var out []Diagnostic
	byName := defIndex(u)
	s := u.ContextSchema()
	for _, q := range u.Rules {
		i, ok := byName[q.HeadRel]
		if !ok {
			continue // viewstrat's finding
		}
		scheme := u.Defs[i].Rel
		if len(q.Head) != scheme.Arity() {
			out = append(out, u.diag("viewtype", q.Pos,
				"rule for %q has arity %d, scheme wants %d", q.HeadRel, len(q.Head), scheme.Arity()))
			continue
		}
		types := varTypes(q, s)
		for p, t := range q.Head {
			var ht value.Type
			if t.IsConst {
				ht = t.Const.Type
			} else {
				var known bool
				ht, known = types[t.Var]
				if !known {
					continue // headunsafe or atomarity owns this
				}
			}
			if ht != value.NoType && ht != scheme.Attrs[p].Type {
				out = append(out, u.diag("viewtype", termPos(q, t),
					"rule for %q: head position %d has type %v, scheme wants %v", q.HeadRel, p, ht, scheme.Attrs[p].Type))
			}
		}
	}
	return out
}
