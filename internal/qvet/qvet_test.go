package qvet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/schema"
)

// The fixture harness mirrors internal/analysis: every rule has a
// testdata/<rule>/ directory with a bad.* file carrying trailing
// "# want <rule>" markers (one expected finding per occurrence of the
// rule name on that line) and a good.* file that must vet clean under
// the rule.

func fixtureSchema(t *testing.T, name string) *schema.Schema {
	t.Helper()
	text, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	s, err := schema.Parse(string(text))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return s
}

// loadFixture builds a unit for path, picking the loader by extension
// and supplying the shared fixture schemas as context.
func loadFixture(t *testing.T, path string) *Unit {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	switch filepath.Ext(path) {
	case ".cq":
		return NewQueriesUnit(path, text, fixtureSchema(t, "base.schema"))
	case ".prog":
		return NewProgramUnit(path, text, fixtureSchema(t, "base.schema"))
	case ".map":
		return NewMappingUnit(path, text, fixtureSchema(t, "base.schema"), fixtureSchema(t, "dst.schema"))
	case ".schema":
		return NewSchemaUnit(path, text)
	default:
		t.Fatalf("unknown fixture extension: %s", path)
		return nil
	}
}

// wantCounts reads "# want <rule> ..." markers: line number -> number of
// findings the named rule must report on that line.
func wantCounts(text, rule string) map[int]int {
	out := make(map[int]int)
	for i, line := range strings.Split(text, "\n") {
		_, marker, ok := strings.Cut(line, "# want ")
		if !ok {
			continue
		}
		for _, name := range strings.Fields(marker) {
			if name == rule {
				out[i+1]++
			}
		}
	}
	return out
}

func ruleByName(t *testing.T, name string) Rule {
	t.Helper()
	for _, r := range AllRules() {
		if r.Name() == name {
			return r
		}
	}
	t.Fatalf("no rule named %q", name)
	return nil
}

func TestRuleFixtures(t *testing.T) {
	dirs, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		rule := d.Name()
		covered[rule] = true
		t.Run(rule, func(t *testing.T) {
			r := ruleByName(t, rule)
			matches, err := filepath.Glob(filepath.Join("testdata", rule, "*"))
			if err != nil || len(matches) == 0 {
				t.Fatalf("no fixtures for %s: %v", rule, err)
			}
			var sawBad, sawGood bool
			for _, path := range matches {
				u := loadFixture(t, path)
				if len(u.ParseDiags) != 0 {
					t.Fatalf("%s: fixture does not parse: %v", path, u.ParseDiags[0])
				}
				got := make(map[int]int)
				for _, diag := range Run([]*Unit{u}, []Rule{r}) {
					if diag.Rule != rule {
						t.Errorf("%s: rule %s reported as %q: %s", path, rule, diag.Rule, diag)
					}
					if !diag.Pos.IsValid() {
						t.Errorf("%s: finding without position: %s", path, diag)
					}
					got[diag.Pos.Line]++
				}
				want := wantCounts(u.Text, rule)
				if strings.HasPrefix(filepath.Base(path), "bad") {
					sawBad = true
					if len(want) == 0 {
						t.Fatalf("%s: bad fixture has no want markers", path)
					}
				} else {
					sawGood = true
				}
				for line, n := range want {
					if got[line] != n {
						t.Errorf("%s:%d: want %d %s finding(s), got %d", path, line, n, rule, got[line])
					}
				}
				for line, n := range got {
					if want[line] == 0 {
						t.Errorf("%s:%d: %d unexpected %s finding(s)", path, line, n, rule)
					}
				}
			}
			if !sawBad || !sawGood {
				t.Errorf("rule %s needs both a bad and a good fixture (bad=%v good=%v)", rule, sawBad, sawGood)
			}
		})
	}
	for _, r := range AllRules() {
		if !covered[r.Name()] {
			t.Errorf("rule %s has no fixture directory", r.Name())
		}
	}
}

func TestRuleNamesUniqueAndLower(t *testing.T) {
	seen := make(map[string]bool)
	for _, name := range RuleNames() {
		if name != strings.ToLower(name) || strings.ContainsAny(name, " \t") {
			t.Errorf("rule name %q is not a lowercase token", name)
		}
		if seen[name] {
			t.Errorf("duplicate rule name %q", name)
		}
		seen[name] = true
	}
	if len(seen) < 10 {
		t.Errorf("catalogue has %d rules, want at least 10", len(seen))
	}
}

func TestDiagnosticString(t *testing.T) {
	u := &Unit{File: "views.cq"}
	d := u.diag("eqconflict", cq.Pos{Line: 3, Col: 14}, "equality %s is unsatisfiable", "X = T1:2")
	want := "views.cq:3:14: [eqconflict] equality X = T1:2 is unsatisfiable"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	s := fixtureSchema(t, "base.schema")
	flagged := "Q(X) :- R(X, Y), Y = T2:1, Y = T2:2."
	cases := []struct {
		name string
		text string
		want int
	}{
		{"no directive", flagged, 1},
		{"same line", flagged + " # keyedeq:allow(eqconflict) -- exercising the empty query", 0},
		{"line above", "# keyedeq:allow(eqconflict) -- empty on purpose\n" + flagged, 0},
		{"wrong rule", flagged + " # keyedeq:allow(eqtype) -- not this one", 1},
		{"multiple rules", flagged + " # keyedeq:allow(eqtype, eqconflict)", 0},
		{"too far above", "# keyedeq:allow(eqconflict)\n\n" + flagged, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := NewQueriesUnit("t.cq", tc.text, s)
			if len(u.ParseDiags) != 0 {
				t.Fatalf("parse: %v", u.ParseDiags[0])
			}
			got := Run([]*Unit{u}, []Rule{EqConflict{}})
			if len(got) != tc.want {
				t.Errorf("got %d findings, want %d: %v", len(got), tc.want, got)
			}
		})
	}
}

func TestRunIsRuleOrderIndependent(t *testing.T) {
	// Load every fixture into one batch and compare the full catalogue
	// against its reversal.  (keyedeq_debug builds additionally assert
	// this inside Run itself.)
	var units []*Unit
	matches, err := filepath.Glob(filepath.Join("testdata", "*", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range matches {
		units = append(units, loadFixture(t, path))
	}
	rules := AllRules()
	rev := make([]Rule, len(rules))
	for i, r := range rules {
		rev[len(rules)-1-i] = r
	}
	a, b := Run(units, rules), Run(units, rev)
	if !sameDiagnostics(a, b) {
		t.Fatalf("diagnostic set depends on rule order:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("fixture batch produced no findings; harness is not exercising anything")
	}
}

func TestParseDiagnosticsArePositioned(t *testing.T) {
	s := fixtureSchema(t, "base.schema")
	u := NewQueriesUnit("t.cq", "Q(X) :- R(X, Y).\n  Q(X :- R(X, Y).\n", s)
	if len(u.Queries) != 1 {
		t.Fatalf("lenient loader kept %d queries, want 1", len(u.Queries))
	}
	if len(u.ParseDiags) != 1 {
		t.Fatalf("got %d parse diags, want 1: %v", len(u.ParseDiags), u.ParseDiags)
	}
	d := u.ParseDiags[0]
	if d.Rule != "parse" || d.Pos.Line != 2 || d.Pos.Col < 3 {
		t.Errorf("parse diag at %v (rule %q), want line 2 at or after the indent", d.Pos, d.Rule)
	}
	out := Run([]*Unit{u}, AllRules())
	found := false
	for _, diag := range out {
		if diag.Rule == "parse" {
			found = true
		}
	}
	if !found {
		t.Error("Run dropped the parse diagnostic")
	}
}

func TestRunSortsAcrossFilesAndPositions(t *testing.T) {
	s := fixtureSchema(t, "base.schema")
	ub := NewQueriesUnit("b.cq", "Q(X, W) :- R(X, Y), Z = T2:1.", s)
	ua := NewQueriesUnit("a.cq", "Q(X, W) :- R(X, Y).", s)
	out := Run([]*Unit{ub, ua}, AllRules())
	if len(out) < 3 {
		t.Fatalf("want at least 3 findings, got %v", out)
	}
	for i := 1; i < len(out); i++ {
		p, q := out[i-1], out[i]
		if p.File > q.File || (p.File == q.File && p.Pos.Line > q.Pos.Line) ||
			(p.File == q.File && p.Pos.Line == q.Pos.Line && p.Pos.Col > q.Pos.Col) {
			t.Errorf("output not sorted: %s before %s", p, q)
		}
	}
}
