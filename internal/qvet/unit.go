package qvet

import (
	"fmt"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/schema"
)

// Kind discriminates what a unit holds.
type Kind int

const (
	// KindQueries is a file of standalone conjunctive queries, one per
	// line, checked against a context schema.
	KindQueries Kind = iota
	// KindProgram is a non-recursive Datalog program over a base schema.
	KindProgram
	// KindMapping is a query mapping: one view per destination relation.
	KindMapping
	// KindSchema is a schema file checked on its own.
	KindSchema
)

// String names the kind for messages.
func (k Kind) String() string {
	switch k {
	case KindQueries:
		return "queries"
	case KindProgram:
		return "program"
	case KindMapping:
		return "mapping"
	case KindSchema:
		return "schema"
	}
	return "unknown"
}

// ViewDef is one lenient "def" declaration of a program file.
type ViewDef struct {
	Rel *schema.Relation
	Pos cq.Pos
}

// RelDecl is one lenient relation scheme line of a schema file.
type RelDecl struct {
	Rel *schema.Relation
	Pos cq.Pos
}

// Unit is one loaded artifact under analysis.  Loading is LENIENT:
// everything that parses is kept, everything that does not becomes a
// "parse" diagnostic, and no cross-line validation happens — that is
// the rules' job, so an ill-formed file yields positioned findings
// instead of one fatal error.
type Unit struct {
	File string
	Kind Kind
	// Text is the raw file text; the driver scans it for
	// keyedeq:allow directives.
	Text string

	// Schema is the context schema: the schema queries are checked
	// against (KindQueries), the program's base schema (KindProgram),
	// or the mapping's source schema (KindMapping).  Nil for
	// KindSchema units and when the caller could not load one.
	Schema *schema.Schema
	// Dst is the mapping's destination schema (KindMapping only).
	Dst *schema.Schema

	// Queries holds standalone queries (KindQueries) or mapping views
	// (KindMapping) in file order.
	Queries []*cq.Query
	// Defs and Rules hold a program's declarations and rules in file
	// order (KindProgram).
	Defs  []ViewDef
	Rules []*cq.Query
	// Rels holds a schema file's relation scheme lines (KindSchema).
	Rels []RelDecl

	// ParseDiags are loader-produced syntax findings (rule "parse").
	ParseDiags []Diagnostic
}

// stripComment cuts a line at its first '#', so fixtures and data files
// can carry trailing comments ("R(X, Y). # want eqconflict").  The
// core parsers have no trailing-comment support; only vet-loaded files
// get it, and positions are unaffected because only a suffix is cut.
func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		return line[:i]
	}
	return line
}

// lines iterates the non-blank, comment-stripped lines of text, giving
// fn each trimmed line and the file position of its first byte.
func lines(text string, fn func(trimmed string, base cq.Pos)) {
	for i, raw := range strings.Split(text, "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		fn(trimmed, cq.Pos{Line: i + 1, Col: cq.LineIndent(line) + 1})
	}
}

func (u *Unit) parseDiag(pos cq.Pos, err error) {
	u.ParseDiags = append(u.ParseDiags, Diagnostic{
		Rule:    "parse",
		File:    u.File,
		Pos:     pos,
		Message: cq.PositionedMsg(err, pos),
	})
}

// NewQueriesUnit loads a queries file: one conjunctive query per line,
// checked against s.
func NewQueriesUnit(file, text string, s *schema.Schema) *Unit {
	u := &Unit{File: file, Kind: KindQueries, Text: text, Schema: s}
	lines(text, func(trimmed string, base cq.Pos) {
		q, err := cq.ParseAt(trimmed, base)
		if err != nil {
			u.parseDiag(base, err)
			return
		}
		u.Queries = append(u.Queries, q)
	})
	return u
}

// NewProgramUnit loads a program file leniently over base: "def" lines
// declare views, all other lines are rules.  Stratification, typing,
// and shadowing are NOT enforced here — the view* rules report them.
func NewProgramUnit(file, text string, base *schema.Schema) *Unit {
	u := &Unit{File: file, Kind: KindProgram, Text: text, Schema: base}
	lines(text, func(trimmed string, pos cq.Pos) {
		if rest, ok := strings.CutPrefix(trimmed, "def "); ok {
			rel, err := schema.ParseRelation(strings.TrimSpace(rest))
			if err != nil {
				u.parseDiag(pos, err)
				return
			}
			u.Defs = append(u.Defs, ViewDef{Rel: rel, Pos: pos})
			return
		}
		q, err := cq.ParseAt(trimmed, pos)
		if err != nil {
			u.parseDiag(pos, err)
			return
		}
		u.Rules = append(u.Rules, q)
	})
	return u
}

// NewMappingUnit loads a mapping file: one view per line, bodies over
// src, heads naming dst relations.  The bijection between views and
// destination relations is NOT enforced here — mapviews reports it.
func NewMappingUnit(file, text string, src, dst *schema.Schema) *Unit {
	u := &Unit{File: file, Kind: KindMapping, Text: text, Schema: src, Dst: dst}
	lines(text, func(trimmed string, base cq.Pos) {
		q, err := cq.ParseAt(trimmed, base)
		if err != nil {
			u.parseDiag(base, err)
			return
		}
		u.Queries = append(u.Queries, q)
	})
	return u
}

// NewSchemaUnit loads a schema file leniently: every relation line that
// parses is kept, including duplicates (schemadup reports them).
func NewSchemaUnit(file, text string) *Unit {
	u := &Unit{File: file, Kind: KindSchema, Text: text}
	lines(text, func(trimmed string, pos cq.Pos) {
		rel, err := schema.ParseRelation(trimmed)
		if err != nil {
			u.parseDiag(pos, err)
			return
		}
		u.Rels = append(u.Rels, RelDecl{Rel: rel, Pos: pos})
	})
	return u
}

// ContextSchema returns the schema a unit's query bodies resolve
// against: the context schema itself, extended with every declared view
// for programs (stratification violations are viewstrat's business, not
// a resolution failure).  May be nil (no schema supplied); rules must
// tolerate that.
func (u *Unit) ContextSchema() *schema.Schema {
	if u.Kind != KindProgram || len(u.Defs) == 0 {
		return u.Schema
	}
	// Built without validation on purpose: duplicate or shadowing defs
	// must not make the whole unit opaque.  Lookup returns the first
	// match, which is the base relation under shadowing.
	ext := &schema.Schema{}
	if u.Schema != nil {
		ext.Relations = append(ext.Relations, u.Schema.Relations...)
	}
	for _, d := range u.Defs {
		ext.Relations = append(ext.Relations, d.Rel)
	}
	return ext
}

// AllQueries returns every conjunctive query in the unit — standalone
// queries, mapping views, or program rules — in file order.
func (u *Unit) AllQueries() []*cq.Query {
	if u.Kind == KindProgram {
		return u.Rules
	}
	return u.Queries
}

// diag builds a finding for this unit.
func (u *Unit) diag(rule string, pos cq.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Rule: rule, File: u.File, Pos: pos, Message: fmt.Sprintf(format, args...)}
}
