package qvet

import (
	"keyedeq/internal/containment"
	"keyedeq/internal/fd"
)

// redundantAtomCap bounds the body size RedundantAtom will minimize.
// The core computation runs containment tests (NP-hard in the query
// size); beyond the cap the rule stays silent rather than stalling the
// whole vet run.  Paper-scale queries sit far below it.
const redundantAtomCap = 8

// RedundantAtom reports body atoms whose removal leaves an equivalent
// query, per the homomorphism core computed by containment.Minimize
// under the schema's key dependencies.  A redundant atom is not wrong,
// but it bloats every downstream chase and containment search — the
// paper's proofs always argue on minimized queries, and so should
// inputs.  The check is static: the query text is never evaluated.
type RedundantAtom struct{}

// Name implements Rule.
func (RedundantAtom) Name() string { return "redundantatom" }

// Check implements Rule.
func (RedundantAtom) Check(u *Unit) []Diagnostic {
	s := u.ContextSchema()
	if s == nil || s.Validate() != nil {
		return nil
	}
	deps := fd.KeyFDs(s)
	var out []Diagnostic
	for _, q := range u.AllQueries() {
		if len(q.Body) < 2 || len(q.Body) > redundantAtomCap {
			continue
		}
		// Only well-formed queries have a core; the other rules own
		// the ill-formed cases.
		if q.Validate(s) != nil {
			continue
		}
		core, err := containment.Minimize(q, s, deps)
		if err != nil || len(core.Body) >= len(q.Body) {
			continue
		}
		// Attribute the shrinkage to concrete atoms: atoms of one
		// relation are interchangeable up to renaming, so report the
		// last occurrences of each relation the core has fewer of.
		dropped := make(map[string]int)
		for _, a := range q.Body {
			dropped[a.Rel]++
		}
		for _, a := range core.Body {
			dropped[a.Rel]--
		}
		for i := len(q.Body) - 1; i >= 0; i-- {
			a := q.Body[i]
			if dropped[a.Rel] > 0 {
				dropped[a.Rel]--
				out = append(out, u.diag("redundantatom", atomPos(q, a),
					"atom %s is redundant: the query's core keeps %d of %d atoms (homomorphism check, keys included)",
					a, len(core.Body), len(q.Body)))
			}
		}
	}
	sortDiagnostics(out)
	return out
}
