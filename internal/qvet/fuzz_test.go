package qvet

import (
	"testing"

	"keyedeq/internal/schema"
)

// FuzzQVet drives the lenient loaders and the full rule catalogue over
// arbitrary text, for every unit kind.  The invariant: vet never
// panics, every finding carries a valid position, and the output is
// identical under rule-order reversal.  Under plain `go test` the seed
// corpus runs as regression tests; `go test -fuzz=FuzzQVet` explores.
func FuzzQVet(f *testing.F) {
	seeds := []string{
		"Q(X) :- R(X, Y), Y = T2:1, Y = T2:2.",
		"Q(X, W) :- R(X, Y), S(X, B, C), Z = T1:1.",
		"def V1(a:T1, b:T1)\nV1(X, Y) :- V1(X, Z), E(Z2, Y), Z = Z2.",
		"def E(a*:T1, b:T1)\nE(X, Y) :- E(X, Y).",
		"V(X, T2:9) :- R(X, Y).\nW(X) :- R(X, Y).",
		"R(a*:T1, b:T2)\nR(a*:T1, b:T2)\nS(x:T1, y:T2, y:T2)",
		"# keyedeq:allow(eqconflict) -- fuzz\nQ(X) :- R(X, Y), Y = T2:1, Y = T2:2.",
		"Q(X :- R(X, Y).\ndef broken(\n((((",
		"",
	}
	for _, s := range seeds {
		for kind := 0; kind < 4; kind++ {
			f.Add(s, kind)
		}
	}
	base := schema.MustParse("R(a*:T1, b:T2)\nS(x*:T1, y:T2, z:T3)\nE(src*:T1, dst:T1)")
	dst := schema.MustParse("V(v1*:T1, v2:T2)\nW(w1*:T1, w2:T1)")
	f.Fuzz(func(t *testing.T, text string, kind int) {
		var u *Unit
		switch Kind(((kind % 4) + 4) % 4) {
		case KindQueries:
			u = NewQueriesUnit("fuzz.cq", text, base)
		case KindProgram:
			u = NewProgramUnit("fuzz.prog", text, base)
		case KindMapping:
			u = NewMappingUnit("fuzz.map", text, base, dst)
		case KindSchema:
			u = NewSchemaUnit("fuzz.schema", text)
		}
		rules := AllRules()
		out := Run([]*Unit{u}, rules)
		for _, d := range out {
			if d.Pos.Line < 1 || d.Pos.Col < 1 {
				t.Fatalf("finding without a position: %s", d)
			}
			if d.Rule == "" || d.File == "" {
				t.Fatalf("finding missing rule or file: %#v", d)
			}
		}
		rev := make([]Rule, len(rules))
		for i, r := range rules {
			rev[len(rules)-1-i] = r
		}
		if !sameDiagnostics(out, Run([]*Unit{u}, rev)) {
			t.Fatalf("diagnostics depend on rule order for %q", text)
		}
	})
}
