package qvet

// Schema-level rules over the lenient relation-line representation.

// SchemaDup reports duplicate relation names across a schema file and
// duplicate attribute names within one relation.  schema.New rejects
// both fatally; vet points at each offending line instead.
type SchemaDup struct{}

// Name implements Rule.
func (SchemaDup) Name() string { return "schemadup" }

// Check implements Rule.
func (SchemaDup) Check(u *Unit) []Diagnostic {
	if u.Kind != KindSchema {
		return nil
	}
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, d := range u.Rels {
		if seen[d.Rel.Name] {
			out = append(out, u.diag("schemadup", d.Pos,
				"duplicate relation name %q", d.Rel.Name))
		}
		seen[d.Rel.Name] = true
		attrs := make(map[string]bool)
		for _, a := range d.Rel.Attrs {
			if attrs[a.Name] {
				out = append(out, u.diag("schemadup", d.Pos,
					"relation %q has duplicate attribute %q", d.Rel.Name, a.Name))
			}
			attrs[a.Name] = true
		}
	}
	return out
}

// KeyCover reports schemas that are neither fully keyed nor fully
// unkeyed.  The paper's dichotomy (keyed schemas in Theorem 13, unkeyed
// in the Sagiv–Yannakakis reduction) assumes a uniform key discipline;
// a mixed schema silently weakens every key-based inference — the
// κ-projection and FD-transfer (Theorem 6) only see the keyed part.
type KeyCover struct{}

// Name implements Rule.
func (KeyCover) Name() string { return "keycover" }

// Check implements Rule.
func (KeyCover) Check(u *Unit) []Diagnostic {
	if u.Kind != KindSchema {
		return nil
	}
	keyed, unkeyed := 0, 0
	for _, d := range u.Rels {
		if d.Rel.Keyed() {
			keyed++
		} else {
			unkeyed++
		}
	}
	if keyed == 0 || unkeyed == 0 {
		return nil
	}
	var out []Diagnostic
	for _, d := range u.Rels {
		if !d.Rel.Keyed() {
			out = append(out, u.diag("keycover", d.Pos,
				"relation %q declares no key but %d other relation(s) do; the paper's machinery wants a fully keyed or fully unkeyed schema", d.Rel.Name, keyed))
		}
	}
	return out
}
