// Package qvet is keyedeq's semantic static analyzer for the artifacts
// the paper reasons about: conjunctive queries, non-recursive Datalog
// programs, query mappings, and keyed schemas.  Where internal/analysis
// lints the repo's Go sources, qvet lints the *inputs* of the
// equivalence machinery, rejecting ill-formed or degenerate queries
// cheaply and deterministically before the chase or a containment
// search ever runs.  It follows the same architecture: named,
// individually testable rules over loaded units, positioned
// diagnostics, and directive suppression.
//
// The rule catalogue (paper references in each rule's doc comment):
//
//	eqconflict     equality list equates two distinct constants
//	eqtype         equality compares attributes of different types
//	eqorphan       equality references a variable absent from the body
//	headunsafe     head variable not bound by any body atom
//	dupplaceholder body placeholder variable reused (§2 syntax)
//	atomarity      unknown relation or arity mismatch in a body atom
//	unusedatom     body atom contributing no head or equality variable
//	redundantatom  atom removable per the Minimize homomorphism check
//	viewstrat      undeclared, empty, or non-stratified view uses
//	viewshadow     view declaration shadowing a base relation or a view
//	viewtype       rule head incompatible with its view's scheme
//	mapviews       mapping views not in bijection with the destination
//	recvtotal      destination attribute receiving no source attribute
//	schemadup      duplicate relation or attribute names in a schema
//	keycover       schema neither fully keyed nor fully unkeyed
//
// A finding can be suppressed — with justification — by a directive on
// the flagged line or the line above it, mirroring keyedeq-lint:
//
//	# keyedeq:allow(eqconflict) -- exercising the empty query
//
// The driver is cmd/keyedeq-vet.
package qvet

import (
	"fmt"
	"sort"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/invariant"
)

// Diagnostic is one rule finding, positioned in the unit's source file.
type Diagnostic struct {
	Rule    string
	File    string
	Pos     cq.Pos
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Pos.Line, d.Pos.Col, d.Rule, d.Message)
}

// Rule is one named, independently testable check over a loaded unit.
// Rules must be pure functions of the unit: no rule may depend on
// another rule having run, so the diagnostic set is identical under any
// rule permutation (asserted by Run in keyedeq_debug builds).
type Rule interface {
	Name() string
	// Check inspects one unit and returns its findings.  Directive
	// suppression is applied by Run, not by the rule.
	Check(u *Unit) []Diagnostic
}

// AllRules returns the full catalogue in reporting order.
func AllRules() []Rule {
	return []Rule{
		EqConflict{}, EqType{}, EqOrphan{}, HeadUnsafe{}, DupPlaceholder{},
		AtomArity{}, UnusedAtom{}, RedundantAtom{},
		ViewStrat{}, ViewShadow{}, ViewType{},
		MapViews{}, RecvTotal{},
		SchemaDup{}, KeyCover{},
	}
}

// RuleNames returns the catalogue's names, for CLI validation.
func RuleNames() []string {
	var out []string
	for _, r := range AllRules() {
		out = append(out, r.Name())
	}
	return out
}

// Run applies the rules to every unit, prepends the units' parse
// diagnostics, drops suppressed findings, and returns the rest sorted
// by position.  In keyedeq_debug builds it re-runs the rules in
// reversed order and asserts the diagnostic set is permutation-
// independent.
func Run(units []*Unit, rules []Rule) []Diagnostic {
	out := run(units, rules)
	if invariant.Debug {
		rev := make([]Rule, len(rules))
		for i, r := range rules {
			rev[len(rules)-1-i] = r
		}
		again := run(units, rev)
		invariant.Assertf(sameDiagnostics(out, again),
			"qvet: diagnostic set depends on rule order (%d vs %d findings)", len(out), len(again))
	}
	return out
}

func run(units []*Unit, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, u := range units {
		allow := collectAllows(u)
		out = append(out, u.ParseDiags...)
		for _, r := range rules {
			for _, d := range r.Check(u) {
				if allow.covers(r.Name(), d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

func sameDiagnostics(a, b []Diagnostic) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allowSet maps line -> rule names suppressed on that line (one unit =
// one file, so no filename dimension).
type allowSet map[int]map[string]bool

func (a allowSet) covers(rule string, pos cq.Pos) bool {
	// A directive suppresses findings on its own line and the line
	// below (directive-above-the-statement style).
	return a[pos.Line][rule] || a[pos.Line-1][rule]
}

// collectAllows gathers "keyedeq:allow(rule, ...)" (or space-separated
// "keyedeq:allow rule ..." ) directives from the unit's comments.  Both
// '#' and '//' comment markers are honoured so query files and embedded
// snippets share one syntax.
func collectAllows(u *Unit) allowSet {
	out := make(allowSet)
	for i, line := range strings.Split(u.Text, "\n") {
		at := strings.Index(line, "keyedeq:allow")
		if at < 0 {
			continue
		}
		rest := line[at+len("keyedeq:allow"):]
		rest, _, _ = strings.Cut(rest, "--")
		rules := out[i+1]
		if rules == nil {
			rules = make(map[string]bool)
			out[i+1] = rules
		}
		for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
			return r == '(' || r == ')' || r == ',' || r == ' ' || r == '\t' || r == '\r'
		}) {
			rules[name] = true
		}
	}
	return out
}
