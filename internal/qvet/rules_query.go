package qvet

import (
	"keyedeq/internal/cq"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Query-level rules.  Each applies to every conjunctive query in a
// unit — standalone queries, mapping views, and program rules alike —
// with the unit's context schema resolving body atoms.

// varTypes resolves the attribute type of every placeholder whose atom
// names a known relation with matching arity.  Unknown relations and
// arity mismatches are atomarity's findings; other rules simply skip
// the unresolvable variables instead of double-reporting.
func varTypes(q *cq.Query, s *schema.Schema) map[cq.Var]value.Type {
	out := make(map[cq.Var]value.Type)
	if s == nil {
		return out
	}
	for _, a := range q.Body {
		r := s.Relation(a.Rel)
		if r == nil || len(a.Vars) != r.Arity() {
			continue
		}
		for i, v := range a.Vars {
			if _, dup := out[v]; !dup {
				out[v] = r.Attrs[i].Type
			}
		}
	}
	return out
}

// termPos prefers a term's own parser span, falling back to the query.
func termPos(q *cq.Query, t cq.Term) cq.Pos {
	if t.Pos.IsValid() {
		return t.Pos
	}
	return q.Pos
}

// eqPos prefers an equality's parser span, falling back to the query.
func eqPos(q *cq.Query, e cq.Equality) cq.Pos {
	if e.Pos.IsValid() {
		return e.Pos
	}
	return q.Pos
}

// EqConflict reports equality lists that equate two distinct constants
// (directly or through a chain of variables).  Such a query returns the
// empty answer on every database — the degenerate case the paper's
// equality-class machinery (§2) detects via EqClasses.Unsatisfiable —
// so shipping one is almost certainly an authoring mistake.
type EqConflict struct{}

// Name implements Rule.
func (EqConflict) Name() string { return "eqconflict" }

// Check finds, for each query, the first equality whose addition makes
// the classes unsatisfiable, by replaying the equality list prefix by
// prefix.
func (EqConflict) Check(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, q := range u.AllQueries() {
		full := cq.NewEqClasses(q)
		if !full.Unsatisfiable() {
			continue
		}
		at := len(q.Eqs) - 1
		for i := range q.Eqs {
			probe := q.Clone()
			probe.Eqs = probe.Eqs[:i+1]
			if cq.NewEqClasses(probe).Unsatisfiable() {
				at = i
				break
			}
		}
		out = append(out, u.diag("eqconflict", eqPos(q, q.Eqs[at]),
			"equality %s makes the classes bind two distinct constants; the query is empty on every database", q.Eqs[at]))
	}
	return out
}

// EqType reports equalities whose two sides have different attribute
// types.  The paper's queries are typed (§2): a cross-type selection or
// join can never hold, and the mapping machinery (Lemmas 3–5) relies on
// receives being type-preserving.
type EqType struct{}

// Name implements Rule.
func (EqType) Name() string { return "eqtype" }

// Check implements Rule.
func (EqType) Check(u *Unit) []Diagnostic {
	var out []Diagnostic
	s := u.ContextSchema()
	for _, q := range u.AllQueries() {
		types := varTypes(q, s)
		for _, e := range q.Eqs {
			lt, ok := types[e.Left]
			if !ok {
				continue
			}
			if e.Right.IsConst {
				if e.Right.Const.Type != value.NoType && e.Right.Const.Type != lt {
					out = append(out, u.diag("eqtype", eqPos(q, e),
						"selection %s compares %v with %v", e, lt, e.Right.Const.Type))
				}
				continue
			}
			rt, ok := types[e.Right.Var]
			if ok && lt != rt {
				out = append(out, u.diag("eqtype", eqPos(q, e),
					"equality %s compares %v with %v", e, lt, rt))
			}
		}
	}
	return out
}

// EqOrphan reports equality predicates referencing a variable that
// occurs in no body atom.  The paper's syntax (§2) requires every
// equality variable to be a body placeholder; an orphan is usually a
// typo for one.
type EqOrphan struct{}

// Name implements Rule.
func (EqOrphan) Name() string { return "eqorphan" }

// Check implements Rule.
func (EqOrphan) Check(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, q := range u.AllQueries() {
		for _, e := range q.Eqs {
			if !q.HasBodyVar(e.Left) {
				out = append(out, u.diag("eqorphan", eqPos(q, e),
					"equality variable %s does not occur in the body", e.Left))
			}
			if !e.Right.IsConst && !q.HasBodyVar(e.Right.Var) {
				out = append(out, u.diag("eqorphan", termPos(q, e.Right),
					"equality variable %s does not occur in the body", e.Right.Var))
			}
		}
	}
	return out
}

// HeadUnsafe reports head variables that no body atom binds.  Such a
// query is unsafe: its answer would range over the whole domain, which
// the paper's view language (and any reasonable evaluator) excludes.
type HeadUnsafe struct{}

// Name implements Rule.
func (HeadUnsafe) Name() string { return "headunsafe" }

// Check implements Rule.
func (HeadUnsafe) Check(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, q := range u.AllQueries() {
		for _, t := range q.Head {
			if t.IsConst {
				continue
			}
			if !q.HasBodyVar(t.Var) {
				out = append(out, u.diag("headunsafe", termPos(q, t),
					"head variable %s is not bound by any body atom", t.Var))
			}
		}
	}
	return out
}

// DupPlaceholder reports body placeholder variables used in more than
// one position.  The paper's restricted Datalog syntax (§2) requires
// globally distinct placeholders, with every join condition explicit in
// the equality list; a reused placeholder silently smuggles in a join.
type DupPlaceholder struct{}

// Name implements Rule.
func (DupPlaceholder) Name() string { return "dupplaceholder" }

// Check implements Rule.
func (DupPlaceholder) Check(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, q := range u.AllQueries() {
		seen := make(map[cq.Var]bool)
		for _, a := range q.Body {
			for j, v := range a.Vars {
				if seen[v] {
					out = append(out, u.diag("dupplaceholder", a.VarPosition(j),
						"placeholder %s reused; the paper's syntax requires distinct variables with an explicit equality", v))
					continue
				}
				seen[v] = true
			}
		}
	}
	return out
}

// AtomArity reports body atoms naming an unknown relation or carrying
// the wrong number of placeholders for their relation scheme.
type AtomArity struct{}

// Name implements Rule.
func (AtomArity) Name() string { return "atomarity" }

// Check implements Rule.
func (AtomArity) Check(u *Unit) []Diagnostic {
	var out []Diagnostic
	s := u.ContextSchema()
	if s == nil {
		return nil
	}
	for _, q := range u.AllQueries() {
		for _, a := range q.Body {
			r := s.Relation(a.Rel)
			if r == nil {
				out = append(out, u.diag("atomarity", atomPos(q, a),
					"unknown relation %q", a.Rel))
				continue
			}
			if len(a.Vars) != r.Arity() {
				out = append(out, u.diag("atomarity", atomPos(q, a),
					"%s has %d placeholders, scheme wants %d", a.Rel, len(a.Vars), r.Arity()))
			}
		}
	}
	return out
}

func atomPos(q *cq.Query, a cq.Atom) cq.Pos {
	if a.Pos.IsValid() {
		return a.Pos
	}
	return q.Pos
}

// UnusedAtom reports body atoms none of whose placeholders reach the
// head or the equality list.  Such an atom only asserts non-emptiness
// of its relation — legal, but almost always a leftover from editing;
// the paper's queries never need one (a pure cartesian factor survives
// no minimization).  Single-atom bodies are exempt: there the atom IS
// the query.
type UnusedAtom struct{}

// Name implements Rule.
func (UnusedAtom) Name() string { return "unusedatom" }

// Check implements Rule.
func (UnusedAtom) Check(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, q := range u.AllQueries() {
		if len(q.Body) <= 1 {
			continue
		}
		used := make(map[cq.Var]bool)
		for _, t := range q.Head {
			if !t.IsConst {
				used[t.Var] = true
			}
		}
		for _, e := range q.Eqs {
			used[e.Left] = true
			if !e.Right.IsConst {
				used[e.Right.Var] = true
			}
		}
		for _, a := range q.Body {
			contributes := false
			for _, v := range a.Vars {
				if used[v] {
					contributes = true
					break
				}
			}
			if !contributes {
				out = append(out, u.diag("unusedatom", atomPos(q, a),
					"atom %s contributes no head or equality variable; it only asserts %s is non-empty", a, a.Rel))
			}
		}
	}
	return out
}
