package qvet

import (
	"keyedeq/internal/cq"
	"keyedeq/internal/value"
)

// Mapping-level rules.  A query mapping α = (v1, ..., vm) must define
// every destination relation exactly once with a type-correct view
// (§2, "query mapping"); the receives analysis (Lemmas 3–5) then
// relates destination attributes back to source attributes.

// MapViews reports mapping files whose views are not in bijection with
// the destination schema: heads naming no destination relation,
// destination relations defined twice or not at all, and views whose
// head arity or types do not match their relation scheme.
type MapViews struct{}

// Name implements Rule.
func (MapViews) Name() string { return "mapviews" }

// Check implements Rule.
func (MapViews) Check(u *Unit) []Diagnostic {
	if u.Kind != KindMapping || u.Dst == nil {
		return nil
	}
	var out []Diagnostic
	defined := make(map[string]bool)
	for _, q := range u.Queries {
		rel := u.Dst.Relation(q.HeadRel)
		if rel == nil {
			out = append(out, u.diag("mapviews", q.Pos,
				"%q is not a destination relation", q.HeadRel))
			continue
		}
		if defined[q.HeadRel] {
			out = append(out, u.diag("mapviews", q.Pos,
				"destination relation %q defined twice", q.HeadRel))
		}
		defined[q.HeadRel] = true
		if len(q.Head) != rel.Arity() {
			out = append(out, u.diag("mapviews", q.Pos,
				"view for %q has arity %d, scheme wants %d", q.HeadRel, len(q.Head), rel.Arity()))
			continue
		}
		types := varTypes(q, u.Schema)
		for p, t := range q.Head {
			var ht value.Type
			if t.IsConst {
				ht = t.Const.Type
			} else {
				var known bool
				ht, known = types[t.Var]
				if !known {
					continue // headunsafe or atomarity owns this
				}
			}
			if ht != value.NoType && ht != rel.Attrs[p].Type {
				out = append(out, u.diag("mapviews", termPos(q, t),
					"view for %q: head position %d has type %v, scheme wants %v", q.HeadRel, p, ht, rel.Attrs[p].Type))
			}
		}
	}
	for _, rel := range u.Dst.Relations {
		if !defined[rel.Name] {
			out = append(out, u.diag("mapviews", cq.Pos{Line: 1, Col: 1},
				"no view defines destination relation %q", rel.Name))
		}
	}
	return out
}

// RecvTotal reports destination attributes that receive no source
// attribute — head positions filled by a constant.  Per the receives
// analysis of Lemmas 3–5, an attribute of S2 that receives nothing
// under α can never be "received back" by any β, so no dominance pair
// (α, β) with β∘α = id can include this mapping: the column carries no
// information from the source instance.
type RecvTotal struct{}

// Name implements Rule.
func (RecvTotal) Name() string { return "recvtotal" }

// Check implements Rule.
func (RecvTotal) Check(u *Unit) []Diagnostic {
	if u.Kind != KindMapping || u.Dst == nil {
		return nil
	}
	var out []Diagnostic
	for _, q := range u.Queries {
		rel := u.Dst.Relation(q.HeadRel)
		if rel == nil || len(q.Head) != rel.Arity() {
			continue // mapviews' finding
		}
		// Receives needs a well-formed body; skip queries other rules
		// already reject so the analysis cannot misfire.
		if u.Schema == nil || q.Validate(u.Schema) != nil {
			continue
		}
		for p, rec := range cq.Receives(q) {
			if len(rec.Attrs) == 0 {
				out = append(out, u.diag("recvtotal", termPos(q, q.Head[p]),
					"destination attribute %s.%s receives no source attribute (constant only); no dominance pair can restore it (Lemmas 3-5)",
					rel.Name, rel.Attrs[p].Name))
			}
		}
	}
	return out
}
