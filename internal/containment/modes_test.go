package containment

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
)

// modePairs is the per-family corpus size for the planned-vs-naive
// differential layer: at least 500 generated pairs per schema family
// must be decided bit-identically by both search modes.
const modePairs = 500

// TestPlannedVsNaiveVerdicts decides every corpus pair in both search
// modes and demands identical verdicts, with search-node accounting
// present in both.
func TestPlannedVsNaiveVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range gen.FamilyNames() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + fi)))
			f, err := gen.PairCorpus(rng, fam, modePairs)
			if err != nil {
				t.Fatal(err)
			}
			pos := 0
			for i, p := range f.Pairs {
				planned, _, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchPlanned)
				if err != nil {
					t.Fatalf("pair %d (%s): planned: %v", i, p.Note, err)
				}
				naive, _, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchNaive)
				if err != nil {
					t.Fatalf("pair %d (%s): naive: %v", i, p.Note, err)
				}
				if planned != naive {
					t.Fatalf("pair %d (%s): planned=%v naive=%v\n  left  %s\n  right %s",
						i, p.Note, planned, naive, p.Left, p.Right)
				}
				// Node counts are deliberately not asserted per pair: zero
				// planned nodes is legitimate (an empty index bucket at the
				// first step refutes containment without visiting a tuple);
				// the benchmark record tracks them in aggregate.
				if planned {
					pos++
				}
			}
			if pos == 0 || pos == len(f.Pairs) {
				t.Fatalf("degenerate corpus: %d/%d positive verdicts", pos, len(f.Pairs))
			}
		})
	}
}

// TestPlannedVsNaiveWitnesses extracts homomorphism certificates in both
// modes for every corpus pair that is contained, and checks each
// certificate symbolically with VerifyHomomorphism.  The two modes may
// find different witnesses; both must be valid.
func TestPlannedVsNaiveWitnesses(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range gen.FamilyNames() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(8000 + fi)))
			f, err := gen.PairCorpus(rng, fam, 120)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range f.Pairs {
				for _, mode := range []cq.SearchMode{cq.SearchPlanned, cq.SearchNaive} {
					hom, ok, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, mode)
					if err != nil {
						t.Fatalf("pair %d (%s) %s: %v", i, p.Note, mode, err)
					}
					if !ok || hom == nil {
						continue
					}
					if err := VerifyHomomorphism(p.Left, p.Right, hom, f.Schema, f.Deps); err != nil {
						t.Fatalf("pair %d (%s) %s: invalid witness %s: %v",
							i, p.Note, mode, hom, err)
					}
				}
			}
		})
	}
}
