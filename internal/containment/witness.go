package containment

import (
	"fmt"
	"sort"
	"strings"

	"keyedeq/internal/chase"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Homomorphism witnesses a containment q1 ⊑ q2: a mapping from q2's body
// variables to terms of q1 (variables or constants) that carries every
// atom of q2 onto an atom of q1 (modulo q1's equality classes) and q2's
// head onto q1's head.  This is the Chandra–Merlin certificate.
type Homomorphism map[cq.Var]cq.Term

// String renders "{A -> X, B -> T1:3}" deterministically.
func (h Homomorphism) String() string {
	keys := make([]string, 0, len(h))
	for v := range h {
		keys = append(keys, string(v))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + " -> " + h[cq.Var(k)].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FindHomomorphism decides q1 ⊑ q2 and, when it holds, returns the
// explicit homomorphism from q2 into q1.  With deps it first chases q1's
// canonical database; a vacuous containment (failing chase) returns
// ok=true with a nil homomorphism.
func FindHomomorphism(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (Homomorphism, bool, error) {
	return FindHomomorphismMode(q1, q2, s, deps, cq.SearchPlanned)
}

// FindHomomorphismMode is FindHomomorphism with an explicit homomorphism
// search mode; differential tests verify both modes' witnesses.
func FindHomomorphismMode(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD, mode cq.SearchMode) (Homomorphism, bool, error) {
	if err := CheckComparable(q1, q2, s); err != nil {
		return nil, false, err
	}
	tb := chase.NewTableau(s)
	vars, err := chase.Freeze(tb, q1)
	if err != nil {
		return nil, false, err
	}
	head, err := chase.HeadTerms(tb, q1, vars)
	if err != nil {
		return nil, false, err
	}
	if len(deps) > 0 {
		if _, err := tb.Run(deps); err != nil {
			return nil, false, err
		}
	}
	if tb.Failed() {
		return nil, true, nil
	}
	var alloc value.Allocator
	for _, c := range q1.Constants() {
		alloc.Reserve(c)
	}
	for _, c := range q2.Constants() {
		alloc.Reserve(c)
	}
	db, valOf, err := tb.ToDatabase(&alloc)
	if err != nil {
		return nil, false, err
	}
	want := make(instance.Tuple, len(head))
	for i, h := range head {
		want[i] = valOf[h]
	}
	ok, binding, _, err := cq.FindAnswerBindingMode(q2, db, want, mode)
	if err != nil || !ok {
		return nil, ok, err
	}
	// Translate the value binding back to q1 terms: each frozen value
	// maps to a representative q1 variable of its chased class; reserved
	// constants map to themselves.
	valToVar := make(map[value.Value]cq.Var)
	for _, v := range q1.BodyVars() {
		val := valOf[vars[v]]
		if _, seen := valToVar[val]; !seen {
			valToVar[val] = v
		}
	}
	hom := make(Homomorphism, len(binding))
	for v2, val := range binding {
		if v1, ok := valToVar[val]; ok {
			hom[v2] = cq.Term{Var: v1}
		} else {
			hom[v2] = cq.C(val)
		}
	}
	return hom, true, nil
}

// VerifyHomomorphism checks the certificate symbolically: applying h to
// every body atom of q2 must land on an atom of q1 up to q1's equality
// classes (after chasing with deps, if given), and applying h to q2's
// head must equal q1's head (again up to q1's classes).
func VerifyHomomorphism(q1, q2 *cq.Query, h Homomorphism, s *schema.Schema, deps []fd.FD) error {
	// Recompute the chased equality structure of q1.
	tb := chase.NewTableau(s)
	vars, err := chase.Freeze(tb, q1)
	if err != nil {
		return err
	}
	if len(deps) > 0 {
		if _, err := tb.Run(deps); err != nil {
			return err
		}
	}
	if tb.Failed() {
		return nil // vacuous containment; any certificate passes
	}
	// sameTerm compares two q1 terms up to chased classes.
	sameTerm := func(a, b cq.Term) bool {
		switch {
		case !a.IsConst && !b.IsConst:
			return tb.Same(vars[a.Var], vars[b.Var])
		case a.IsConst && b.IsConst:
			return a.Const == b.Const
		case a.IsConst:
			c, ok := tb.ConstOf(vars[b.Var])
			return ok && c == a.Const
		default:
			c, ok := tb.ConstOf(vars[a.Var])
			return ok && c == b.Const
		}
	}
	apply := func(v cq.Var) (cq.Term, error) {
		t, ok := h[v]
		if !ok {
			return cq.Term{}, fmt.Errorf("containment: homomorphism misses variable %s", v)
		}
		return t, nil
	}
	// Body atoms.
	for _, a2 := range q2.Body {
		matched := false
		for _, a1 := range q1.Body {
			if a1.Rel != a2.Rel {
				continue
			}
			all := true
			for p := range a2.Vars {
				img, err := apply(a2.Vars[p])
				if err != nil {
					return err
				}
				if !sameTerm(img, cq.Term{Var: a1.Vars[p]}) {
					all = false
					break
				}
			}
			if all {
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("containment: atom %s has no image in q1", a2)
		}
	}
	// Also respect q2's own equality list: equated variables must map to
	// equal terms, and constant bindings must be honored.  One pass over
	// the variables suffices: within a class, equality of images is
	// transitive, so comparing each member against the class's first seen
	// member checks every pair.
	eq2 := cq.NewEqClasses(q2)
	firstOf := make(map[cq.Var]cq.Var)
	firstImg := make(map[cq.Var]cq.Term)
	for _, v := range q2.BodyVars() {
		iv, err := apply(v)
		if err != nil {
			return err
		}
		root := eq2.Find(v)
		if w, seen := firstOf[root]; seen {
			if !sameTerm(firstImg[root], iv) {
				return fmt.Errorf("containment: equality %s = %s not preserved", w, v)
			}
		} else {
			firstOf[root] = v
			firstImg[root] = iv
		}
		if c, ok := eq2.Const(v); ok {
			if !sameTerm(iv, cq.C(c)) {
				return fmt.Errorf("containment: selection %s = %s not preserved", v, c)
			}
		}
	}
	// Head.
	if len(q1.Head) != len(q2.Head) {
		return fmt.Errorf("containment: head arity mismatch")
	}
	for i := range q2.Head {
		var img cq.Term
		if q2.Head[i].IsConst {
			img = q2.Head[i]
		} else {
			t, err := apply(q2.Head[i].Var)
			if err != nil {
				return err
			}
			img = t
		}
		if !sameTerm(img, q1.Head[i]) {
			return fmt.Errorf("containment: head position %d maps to %s, want %s", i, img, q1.Head[i])
		}
	}
	return nil
}
