package containment

import (
	"testing"

	"keyedeq/internal/chase"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
)

func indTGD(s *schema.Schema, fromRel string, fromPos int, toRel string, toPos int) chase.TGD {
	l := s.Relation(fromRel)
	r := s.Relation(toRel)
	body := chase.TGDAtom{Rel: fromRel, Vars: make([]string, l.Arity())}
	for p := range body.Vars {
		body.Vars[p] = "b" + string(rune('0'+p))
	}
	head := chase.TGDAtom{Rel: toRel, Vars: make([]string, r.Arity())}
	for p := range head.Vars {
		head.Vars[p] = "e" + string(rune('0'+p))
	}
	head.Vars[toPos] = body.Vars[fromPos]
	return chase.TGD{Body: []chase.TGDAtom{body}, Head: []chase.TGDAtom{head}}
}

func TestContainedUnderTheoryIND(t *testing.T) {
	s := schema.MustParse("R(a:T1)\nS(b:T1, c:T2)")
	tgds := []chase.TGD{indTGD(s, "R", 0, "S", 0)}
	q1 := cq.MustParse("V(X) :- R(X).")
	q2 := cq.MustParse("V(X) :- R(X), S(Y, Z), X = Y.")
	ok, stats, err := ContainedUnderTheory(q1, q2, s, nil, tgds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("R[0] ⊆ S[0] should make q1 ⊑ q2")
	}
	if stats.ChaseIterations == 0 {
		t.Error("chase iterations not recorded")
	}
	// Without the TGD: not contained.
	ok, _, err = ContainedUnderTheory(q1, q2, s, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("without the inclusion q1 ⋢ q2")
	}
}

func TestEquivalentUnderTheory(t *testing.T) {
	s := schema.MustParse("R(a:T1)\nS(b:T1, c:T2)")
	tgds := []chase.TGD{indTGD(s, "R", 0, "S", 0)}
	q1 := cq.MustParse("V(X) :- R(X).")
	q2 := cq.MustParse("V(X) :- R(X), S(Y, Z), X = Y.")
	ok, _, err := EquivalentUnderTheory(q1, q2, s, nil, tgds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("should be equivalent under the inclusion (q2 ⊑ q1 holds plainly)")
	}
	// Incomparable pair stays inequivalent even under the theory.
	q3 := cq.MustParse("V(Y) :- S(Y, Z).")
	ok, _, err = EquivalentUnderTheory(q1, q3, s, nil, tgds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("R-values vs S-values should differ")
	}
}

func TestContainedUnderTheoryVacuous(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	q := cq.MustParse("V(K) :- R(K, A), R(K2, B), K = K2, A = T1:1, B = T1:2.")
	other := cq.MustParse("V(K) :- R(K, A).")
	ok, stats, err := ContainedUnderTheory(q, other, s, deps, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !stats.ChaseFailed {
		t.Errorf("vacuous containment: ok=%v failed=%v", ok, stats.ChaseFailed)
	}
}

func TestContainedUnderTheoryErrors(t *testing.T) {
	s := schema.MustParse("R(a:T1)")
	q1 := cq.MustParse("V(X) :- R(X).")
	q2 := cq.MustParse("V(X, Y) :- R(X), R(Y).")
	if _, _, err := ContainedUnderTheory(q1, q2, s, nil, nil, 0); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Non-terminating TGD set hits the round bound.
	s2 := schema.MustParse("E(a:T1, b:T1)")
	grow := chase.TGD{
		Body: []chase.TGDAtom{{Rel: "E", Vars: []string{"x", "y"}}},
		Head: []chase.TGDAtom{{Rel: "E", Vars: []string{"y", "z"}}},
	}
	p1 := cq.MustParse("V(X) :- E(X, Y).")
	p2 := cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	if _, _, err := ContainedUnderTheory(p1, p2, s2, nil, []chase.TGD{grow}, 3); err == nil {
		t.Error("non-terminating chase should surface an error")
	}
}
