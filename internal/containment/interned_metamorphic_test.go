package containment

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
	"keyedeq/internal/value"
)

// Metamorphic invariants of the interned decision path: verdicts must
// not change under surface transformations that preserve query
// semantics — α-renaming with atom reorder, and injective renaming of
// the constant values themselves.  Both transformations scramble the
// order in which the freeze step first sees values, so they exercise
// the claim that verdicts never depend on the ID assignment.

// renameQueryConsts applies an injective value renaming f to every
// constant of q (equality bindings and head constants; body atoms carry
// only variables).
func renameQueryConsts(q *cq.Query, f func(value.Value) value.Value) *cq.Query {
	out := q.Clone()
	for i, t := range out.Head {
		if t.IsConst {
			out.Head[i].Const = f(t.Const)
		}
	}
	for i, e := range out.Eqs {
		if e.Right.IsConst {
			out.Eqs[i].Right.Const = f(e.Right.Const)
		}
	}
	return out
}

func TestInternedVerdictInvariantUnderAlphaVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow in -short mode")
	}
	for fi, fam := range internedFamilies() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9900 + fi)))
			f, err := gen.PairCorpus(rng, fam, 120)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range f.Pairs {
				base, _, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatal(err)
				}
				// Variable renaming plus atom/equality reorder changes the
				// freeze's first-sight ID order; the verdict must not move.
				l2 := gen.AlphaVariant(rng, p.Left)
				r2 := gen.AlphaVariant(rng, p.Right)
				got, _, err := EquivalentUnderMode(l2, r2, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatal(err)
				}
				if got != base {
					t.Fatalf("pair %d (%s): verdict flipped under alpha variants: %v -> %v\n  left  %s\n  right %s",
						i, p.Note, base, got, p.Left, p.Right)
				}
			}
		})
	}
}

func TestInternedVerdictInvariantUnderValueRenaming(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow in -short mode")
	}
	// An injective, type-preserving renaming of the constant universe:
	// containment is invariant under any such renaming applied to both
	// sides, and the renamed constants land on different interned IDs.
	ren := func(v value.Value) value.Value {
		return value.Value{Type: v.Type, N: v.N*13 + 5}
	}
	for fi, fam := range internedFamilies() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(10100 + fi)))
			f, err := gen.PairCorpus(rng, fam, 120)
			if err != nil {
				t.Fatal(err)
			}
			renamed := 0
			for i, p := range f.Pairs {
				base, _, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatal(err)
				}
				l2 := renameQueryConsts(p.Left, ren)
				r2 := renameQueryConsts(p.Right, ren)
				if l2.String() != p.Left.String() || r2.String() != p.Right.String() {
					renamed++
				}
				got, _, err := EquivalentUnderMode(l2, r2, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatal(err)
				}
				if got != base {
					t.Fatalf("pair %d (%s): verdict flipped under value renaming: %v -> %v\n  left  %s\n  right %s",
						i, p.Note, base, got, p.Left, p.Right)
				}
			}
			if fam == "keyed" && renamed == 0 {
				t.Fatal("keyed corpus produced no constant-carrying pairs; renaming untested")
			}
		})
	}
}

// TestInternerDeterminismOnCanonicalDatabases pins the freeze side of
// the metamorphic wall directly: freezing the same canonical database
// twice yields bit-identical ID tables, so the interned search's ID
// space is a pure function of the database contents.
func TestInternerDeterminismOnCanonicalDatabases(t *testing.T) {
	rng := rand.New(rand.NewSource(10300))
	f, err := gen.PairCorpus(rng, "keyed", 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f.Pairs {
		hom, ok, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
		if err != nil {
			t.Fatal(err)
		}
		hom2, ok2, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
		if err != nil {
			t.Fatal(err)
		}
		if ok != ok2 || (ok && hom.String() != hom2.String()) {
			t.Fatalf("%s: repeated interned decision diverged: (%v, %s) vs (%v, %s)",
				p.Note, ok, hom, ok2, hom2)
		}
	}
}
