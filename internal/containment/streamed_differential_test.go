package containment

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
)

// This file is the iterator runtime's differential wall: the streamed
// pipeline must decide every corpus pair bit-identically — verdicts,
// work accounting, and witnesses — against BOTH prior oracles, the
// generic planned search and the interned recursive search.  The two
// oracle comparisons are deliberately redundant: a bug that slipped
// into one oracle since its own differential layer landed would
// surface here as a three-way disagreement.

// streamedPairs is the per-family corpus size for the verdict sweep.
const streamedPairs = 500

// TestStreamedVsOraclesVerdicts decides every corpus pair with the
// streamed iterator pipeline and both oracles, demanding bit-identical
// verdicts and bit-identical statistics: the pipeline replays the same
// plan in the same candidate order, so any divergence means the
// iterative cursor driver changed behavior, not just control flow.
func TestStreamedVsOraclesVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range internedFamilies() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + fi)))
			f, err := gen.PairCorpus(rng, fam, streamedPairs)
			if err != nil {
				t.Fatal(err)
			}
			pos := 0
			for i, p := range f.Pairs {
				generic, stG, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchPlanned)
				if err != nil {
					t.Fatalf("pair %d (%s): generic: %v", i, p.Note, err)
				}
				interned, stI, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatalf("pair %d (%s): interned: %v", i, p.Note, err)
				}
				streamed, stS, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchStreamed)
				if err != nil {
					t.Fatalf("pair %d (%s): streamed: %v", i, p.Note, err)
				}
				if generic != streamed || interned != streamed {
					t.Fatalf("pair %d (%s): generic=%v interned=%v streamed=%v\n  left  %s\n  right %s",
						i, p.Note, generic, interned, streamed, p.Left, p.Right)
				}
				if stG != stS {
					t.Fatalf("pair %d (%s): stats diverge\n  generic  %+v\n  streamed %+v\n  left  %s\n  right %s",
						i, p.Note, stG, stS, p.Left, p.Right)
				}
				if stI != stS {
					t.Fatalf("pair %d (%s): stats diverge\n  interned %+v\n  streamed %+v\n  left  %s\n  right %s",
						i, p.Note, stI, stS, p.Left, p.Right)
				}
				if generic {
					pos++
				}
			}
			if pos == 0 || pos == len(f.Pairs) {
				t.Fatalf("degenerate corpus: %d/%d positive verdicts", pos, len(f.Pairs))
			}
		})
	}
}

// TestStreamedVsOraclesWitnesses extracts homomorphism certificates in
// all three modes for every contained corpus pair: after ID decoding
// the streamed certificate must equal both oracles', and it must
// verify symbolically on its own.
func TestStreamedVsOraclesWitnesses(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range internedFamilies() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9500 + fi)))
			f, err := gen.PairCorpus(rng, fam, 120)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range f.Pairs {
				homG, okG, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchPlanned)
				if err != nil {
					t.Fatalf("pair %d (%s): generic: %v", i, p.Note, err)
				}
				homI, okI, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatalf("pair %d (%s): interned: %v", i, p.Note, err)
				}
				homS, okS, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchStreamed)
				if err != nil {
					t.Fatalf("pair %d (%s): streamed: %v", i, p.Note, err)
				}
				if okG != okS || okI != okS {
					t.Fatalf("pair %d (%s): generic ok=%v, interned ok=%v, streamed ok=%v",
						i, p.Note, okG, okI, okS)
				}
				if !okG || homG == nil {
					continue
				}
				if homG.String() != homS.String() {
					t.Fatalf("pair %d (%s): witnesses diverge\n  generic  %s\n  streamed %s",
						i, p.Note, homG, homS)
				}
				if homI.String() != homS.String() {
					t.Fatalf("pair %d (%s): witnesses diverge\n  interned %s\n  streamed %s",
						i, p.Note, homI, homS)
				}
				if err := VerifyHomomorphism(p.Left, p.Right, homS, f.Schema, f.Deps); err != nil {
					t.Fatalf("pair %d (%s): invalid streamed witness %s: %v", i, p.Note, homS, err)
				}
			}
		})
	}
}

// TestAdaptiveVsGenericVerdicts decides a corpus slice per family with
// the adaptive default.  The adaptive runtime chooses its arm per
// query, so node counts legitimately differ from the planned oracle —
// but verdicts never may.
func TestAdaptiveVsGenericVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range internedFamilies() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9700 + fi)))
			f, err := gen.PairCorpus(rng, fam, 200)
			if err != nil {
				t.Fatal(err)
			}
			pos := 0
			for i, p := range f.Pairs {
				generic, stG, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchPlanned)
				if err != nil {
					t.Fatalf("pair %d (%s): generic: %v", i, p.Note, err)
				}
				adaptive, stA, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchAdaptive)
				if err != nil {
					t.Fatalf("pair %d (%s): adaptive: %v", i, p.Note, err)
				}
				if generic != adaptive {
					t.Fatalf("pair %d (%s): generic=%v adaptive=%v\n  left  %s\n  right %s",
						i, p.Note, generic, adaptive, p.Left, p.Right)
				}
				// Chase work is mode-independent even when search work
				// is not.
				if stG.ChaseIterations != stA.ChaseIterations || stG.ChaseMerges != stA.ChaseMerges ||
					stG.ChaseRevisited != stA.ChaseRevisited || stG.ChaseFailed != stA.ChaseFailed ||
					stG.Searches != stA.Searches {
					t.Fatalf("pair %d (%s): mode-independent stats diverge\n  generic  %+v\n  adaptive %+v",
						i, p.Note, stG, stA)
				}
				if generic {
					pos++
				}
			}
			if pos == 0 || pos == len(f.Pairs) {
				t.Fatalf("degenerate corpus: %d/%d positive verdicts", pos, len(f.Pairs))
			}
		})
	}
}
