package containment

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
)

// internedPairs is the per-family corpus size for the interned-vs-generic
// differential layer: at least 500 generated pairs per schema family must
// be decided bit-identically by the interned search and its generic
// oracle.
const internedPairs = 500

// internedFamilies are the schema families the interned differential
// layer sweeps: the keyed and wide families exercise EGD-heavy chases
// feeding the search, and the star/long graph families exercise fan-out
// and deep-chain search shapes.
func internedFamilies() []string {
	return []string{"keyed", "wide", "graph-star", "graph-long"}
}

// TestInternedVsGenericVerdicts decides every corpus pair with the
// interned search and the generic planned oracle, demanding bit-identical
// verdicts AND bit-identical work accounting: the interned search runs
// the same plan in the same candidate order, so search nodes and the
// (mode-independent) chase statistics must agree exactly — any
// divergence means the dense-ID encoding changed behavior, not just
// representation.
func TestInternedVsGenericVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range internedFamilies() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + fi)))
			f, err := gen.PairCorpus(rng, fam, internedPairs)
			if err != nil {
				t.Fatal(err)
			}
			pos := 0
			for i, p := range f.Pairs {
				generic, stG, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchPlanned)
				if err != nil {
					t.Fatalf("pair %d (%s): generic: %v", i, p.Note, err)
				}
				interned, stI, err := EquivalentUnderMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatalf("pair %d (%s): interned: %v", i, p.Note, err)
				}
				if generic != interned {
					t.Fatalf("pair %d (%s): generic=%v interned=%v\n  left  %s\n  right %s",
						i, p.Note, generic, interned, p.Left, p.Right)
				}
				if stG != stI {
					t.Fatalf("pair %d (%s): stats diverge\n  generic  %+v\n  interned %+v\n  left  %s\n  right %s",
						i, p.Note, stG, stI, p.Left, p.Right)
				}
				if generic {
					pos++
				}
			}
			if pos == 0 || pos == len(f.Pairs) {
				t.Fatalf("degenerate corpus: %d/%d positive verdicts", pos, len(f.Pairs))
			}
		})
	}
}

// TestInternedVsGenericWitnesses extracts homomorphism certificates in
// both modes for every contained corpus pair.  The interned search walks
// the identical node sequence as the generic search, so after ID
// decoding the two certificates must be the same homomorphism — and,
// independently, each must verify symbolically.
func TestInternedVsGenericWitnesses(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range internedFamilies() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9500 + fi)))
			f, err := gen.PairCorpus(rng, fam, 120)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range f.Pairs {
				homG, okG, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchPlanned)
				if err != nil {
					t.Fatalf("pair %d (%s): generic: %v", i, p.Note, err)
				}
				homI, okI, err := FindHomomorphismMode(p.Left, p.Right, f.Schema, f.Deps, cq.SearchInterned)
				if err != nil {
					t.Fatalf("pair %d (%s): interned: %v", i, p.Note, err)
				}
				if okG != okI {
					t.Fatalf("pair %d (%s): generic ok=%v, interned ok=%v", i, p.Note, okG, okI)
				}
				if !okG || homG == nil {
					continue
				}
				if homG.String() != homI.String() {
					t.Fatalf("pair %d (%s): witnesses diverge\n  generic  %s\n  interned %s",
						i, p.Note, homG, homI)
				}
				if err := VerifyHomomorphism(p.Left, p.Right, homI, f.Schema, f.Deps); err != nil {
					t.Fatalf("pair %d (%s): invalid interned witness %s: %v", i, p.Note, homI, err)
				}
			}
		})
	}
}
