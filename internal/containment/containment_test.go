package containment

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

var graph = schema.MustParse("E(src:T1, dst:T1)")

func TestClassicChainContainment(t *testing.T) {
	// Boolean-ish (unary) path queries: a length-2 path query is
	// contained in the length-1 (edge) query's projection? Classic
	// example: q1 = nodes with an outgoing 2-path, q2 = nodes with an
	// outgoing edge; q1 ⊑ q2 but not conversely.
	q1 := cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	q2 := cq.MustParse("V(X) :- E(X, Y).")
	ok, err := Contained(q1, q2, graph)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("2-path should be contained in 1-path")
	}
	ok, err = Contained(q2, q1, graph)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("1-path should not be contained in 2-path")
	}
}

func TestSelfLoopCollapse(t *testing.T) {
	// The canonical example: a query asking for a triangle-with-repeat
	// versus a self-loop.  q_loop(X) :- E(X, X) written in the paper's
	// syntax needs a column selection: E(X, Y), X = Y.
	qLoop := cq.MustParse("V(X) :- E(X, Y), X = Y.")
	qEdge := cq.MustParse("V(X) :- E(X, Y).")
	ok, _ := Contained(qLoop, qEdge, graph)
	if !ok {
		t.Error("self-loop query contained in edge query")
	}
	ok, _ = Contained(qEdge, qLoop, graph)
	if ok {
		t.Error("edge query not contained in self-loop query")
	}
}

func TestEquivalenceByRedundantAtom(t *testing.T) {
	// Adding an atom that folds onto an existing one preserves
	// equivalence: E(X,Y) vs E(X,Y), E(X2,Y2) with X=X2 (same atom twice).
	q1 := cq.MustParse("V(X, Y) :- E(X, Y).")
	q2 := cq.MustParse("V(X, Y) :- E(X, Y), E(A, B), X = A, Y = B.")
	ok, err := Equivalent(q1, q2, graph)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("duplicated atom should preserve equivalence")
	}
	// A genuinely extra cross-product atom does NOT preserve equivalence
	// (it can make the query empty when E is empty... but E occurs in
	// both; actually V2 ⊑ V1 and V1 ⊑ V2 here because the extra atom can
	// map anywhere).  Use a different relation to break it.
	s := schema.MustParse("E(src:T1, dst:T1)\nF(a:T1)")
	q3 := cq.MustParse("V(X, Y) :- E(X, Y), F(Z).")
	ok, err = Equivalent(q1, q3, s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("extra F atom must break equivalence (F may be empty)")
	}
	ok, err = Contained(q3, q1, s)
	if err != nil || !ok {
		t.Error("q3 ⊑ q1 should hold")
	}
}

func TestConstantsInContainment(t *testing.T) {
	qc := cq.MustParse("V(X) :- E(X, Y), Y = T1:5.")
	q := cq.MustParse("V(X) :- E(X, Y).")
	ok, _ := Contained(qc, q, graph)
	if !ok {
		t.Error("selection narrows: qc ⊑ q")
	}
	ok, _ = Contained(q, qc, graph)
	if ok {
		t.Error("q ⊄ qc")
	}
	// Two different constants: incomparable.
	qc2 := cq.MustParse("V(X) :- E(X, Y), Y = T1:6.")
	ok, _ = Contained(qc, qc2, graph)
	if ok {
		t.Error("different constants should not be contained")
	}
	// Same constant: equivalent.
	qc3 := cq.MustParse("V(X) :- E(X, Y2), Y2 = T1:5.")
	ok, _ = Equivalent(qc, qc3, graph)
	if !ok {
		t.Error("alpha-renamed constant query should be equivalent")
	}
}

func TestHeadConstants(t *testing.T) {
	q1 := cq.MustParse("V(T1:9, X) :- E(X, Y).")
	q2 := cq.MustParse("V(T1:9, X) :- E(X, Y2).")
	ok, err := Equivalent(q1, q2, graph)
	if err != nil || !ok {
		t.Errorf("equal constant heads should be equivalent: %v %v", ok, err)
	}
	q3 := cq.MustParse("V(T1:8, X) :- E(X, Y).")
	ok, _ = Contained(q1, q3, graph)
	if ok {
		t.Error("different head constants should not be contained")
	}
}

func TestUnsatisfiableQueryContainedInEverything(t *testing.T) {
	bad := cq.MustParse("V(X) :- E(X, Y), Y = T1:1, Y = T1:2.")
	q := cq.MustParse("V(X) :- E(X, Y).")
	ok, err := Contained(bad, q, graph)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("unsatisfiable query is contained in everything")
	}
	ok, err = Contained(q, bad, graph)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("satisfiable query not contained in unsatisfiable one")
	}
}

func TestComparabilityErrors(t *testing.T) {
	q1 := cq.MustParse("V(X) :- E(X, Y).")
	q2 := cq.MustParse("V(X, Y) :- E(X, Y).")
	if _, err := Contained(q1, q2, graph); err == nil {
		t.Error("arity mismatch accepted")
	}
	s := schema.MustParse("E(src:T1, dst:T2)")
	qa := cq.MustParse("V(X) :- E(X, Y).")
	qb := cq.MustParse("V(Y) :- E(X, Y).")
	if _, err := Contained(qa, qb, s); err == nil {
		t.Error("head type mismatch accepted")
	}
	bad := cq.MustParse("V(X) :- Z(X).")
	if _, err := Contained(bad, q1, graph); err == nil {
		t.Error("invalid left query accepted")
	}
	if _, err := Contained(q1, bad, graph); err == nil {
		t.Error("invalid right query accepted")
	}
}

// Containment under key dependencies: the key collapses the canonical
// database, enabling containments that fail without dependencies.
func TestContainmentUnderKeys(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	// q1: two R atoms sharing the key — under the key dependency the
	// a-columns coincide, so q1 ≡ the single-atom query under keys.
	q1 := cq.MustParse("V(K, A, B) :- R(K, A), R(K2, B), K = K2.")
	q2 := cq.MustParse("V(K, A, A) :- R(K, A).")
	ok, _, err := ContainedUnder(q1, q2, s, deps)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("under the key, shared-key atoms force equal a-columns")
	}
	// Without the dependency this containment must fail.
	ok, err = Contained(q1, q2, s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("without keys the containment should fail")
	}
	// And the other direction holds unconditionally.
	ok, err = Contained(q2, q1, s)
	if err != nil || !ok {
		t.Errorf("reverse direction should hold: %v %v", ok, err)
	}
	okBoth, _, err := EquivalentUnder(q1, q2, s, deps)
	if err != nil || !okBoth {
		t.Errorf("queries should be equivalent under keys: %v %v", okBoth, err)
	}
}

func TestChaseFailureMeansContained(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	// Same key, a-columns bound to different constants: no
	// key-satisfying instance matches; the query is vacuously contained.
	q := cq.MustParse("V(K) :- R(K, A), R(K2, B), K = K2, A = T1:1, B = T1:2.")
	other := cq.MustParse("V(K) :- R(K, A).")
	ok, stats, err := ContainedUnder(q, other, s, deps)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !stats.ChaseFailed {
		t.Errorf("vacuous containment expected: ok=%v failed=%v", ok, stats.ChaseFailed)
	}
}

// Soundness fuzz: whenever Contained says yes, random instances must
// agree; whenever it says no, search small instances for a witness
// (not guaranteed to find one, so only the yes-direction is checked
// strictly).
func TestContainmentSoundnessFuzz(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	rng := rand.New(rand.NewSource(31))
	pool := []*cq.Query{
		cq.MustParse("V(X) :- E(X, Y)."),
		cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2."),
		cq.MustParse("V(X) :- E(X, Y), X = Y."),
		cq.MustParse("V(Y) :- E(X, Y)."),
		cq.MustParse("V(X) :- E(X, Y), E(A, B), Y = A, B = X."),
		cq.MustParse("V(X) :- E(X, Y), Y = T1:2."),
	}
	for i, q1 := range pool {
		for j, q2 := range pool {
			claim, err := Contained(q1, q2, s)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 30; trial++ {
				d := instance.NewDatabase(s)
				n := rng.Intn(5)
				for k := 0; k < n; k++ {
					d.MustInsert("E",
						value.Value{Type: 1, N: int64(rng.Intn(3) + 1)},
						value.Value{Type: 1, N: int64(rng.Intn(3) + 1)})
				}
				a1, _ := cq.Eval(q1, d)
				a2, _ := cq.Eval(q2, d)
				if claim && !a1.SubsetOf(a2) {
					t.Fatalf("pool[%d] ⊑ pool[%d] claimed but instance refutes:\n%s\n%s on %s",
						i, j, a1, a2, d)
				}
				if !claim && a1.SubsetOf(a2) {
					continue // not a witness; fine
				}
			}
		}
	}
}

func TestMinimizePaperStyle(t *testing.T) {
	// The saturated 3-copy query minimizes to a single atom.
	q := cq.MustParse("Q(X, Y) :- E(X, Y), E(A, B), E(C, D), X = A, X = C, Y = B, Y = D.")
	m, err := Minimize(q, graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Errorf("Minimize left %d atoms: %s", len(m.Body), m)
	}
	ok, _ := Equivalent(q, m, graph)
	if !ok {
		t.Error("minimized query not equivalent to original")
	}
}

func TestMinimizeKeepsCore(t *testing.T) {
	// 2-path query is already minimal.
	q := cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	m, err := Minimize(q, graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Errorf("2-path minimized to %d atoms: %s", len(m.Body), m)
	}
}

func TestMinimizeFoldableTail(t *testing.T) {
	// V(X) :- E(X,Y), E(X2,Z), X=X2: second atom folds onto the first.
	q := cq.MustParse("V(X) :- E(X, Y), E(X2, Z), X = X2.")
	m, err := Minimize(q, graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Errorf("foldable atom not removed: %s", m)
	}
}

func TestMinimizeUnderKeys(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	// Under the key, R(K,A), R(K,B) is one atom; without it, the query
	// head (K, A, B) needs... A and B are equated only under the key.
	q := cq.MustParse("V(K, A) :- R(K, A), R(K2, B), K = K2.")
	m, err := Minimize(q, s, deps)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Errorf("key-based minimization failed: %s", m)
	}
	// Without dependencies the second atom is ALSO removable here
	// because B is projected away.  Keep a case where it is not:
	q2 := cq.MustParse("V(K, A, B) :- R(K, A), R(K2, B), K = K2.")
	m2, err := Minimize(q2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Body) != 2 {
		t.Errorf("without keys both atoms are needed: %s", m2)
	}
	m3, err := Minimize(q2, s, deps)
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Body) != 1 {
		t.Errorf("under keys one atom suffices: %s", m3)
	}
}

func TestMinimizePreservesSingleAtom(t *testing.T) {
	q := cq.MustParse("V(X, Y) :- E(X, Y).")
	m, err := Minimize(q, graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Errorf("single atom changed: %s", m)
	}
}

func TestMinimizeSemanticsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	queries := []*cq.Query{
		cq.MustParse("Q(X, Y) :- E(X, Y), E(A, B), X = A, Y = B."),
		cq.MustParse("V(X) :- E(X, Y), E(X2, Z), X = X2."),
		cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2."),
	}
	for _, q := range queries {
		m, err := Minimize(q, graph, nil)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			d := instance.NewDatabase(graph)
			for k := 0; k < rng.Intn(6); k++ {
				d.MustInsert("E",
					value.Value{Type: 1, N: int64(rng.Intn(3) + 1)},
					value.Value{Type: 1, N: int64(rng.Intn(3) + 1)})
			}
			a1, _ := cq.Eval(q, d)
			a2, _ := cq.Eval(m, d)
			if !a1.Equal(a2) {
				t.Fatalf("Minimize changed semantics of %s -> %s on %s:\n%s vs %s", q, m, d, a1, a2)
			}
		}
	}
}
