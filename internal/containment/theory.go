package containment

import (
	"keyedeq/internal/chase"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Containment under a full dependency theory: EGDs (keys/FDs) plus TGDs
// (inclusion dependencies).  For a terminating chase — guaranteed when
// the TGD set is weakly acyclic — the classical result applies: q1 ⊑ q2
// over all theory-satisfying instances iff q2 retrieves q1's frozen head
// from the chased canonical database of q1.

// DefaultTGDRounds bounds the TGD chase; weakly acyclic sets terminate
// long before any sensible bound.
const DefaultTGDRounds = 64

// ContainedUnderTheory reports whether q1 ⊑ q2 over every instance of s
// satisfying both the egds and the tgds.
func ContainedUnderTheory(q1, q2 *cq.Query, s *schema.Schema, egds []fd.FD, tgds []chase.TGD, maxRounds int) (bool, Stats, error) {
	var stats Stats
	if maxRounds <= 0 {
		maxRounds = DefaultTGDRounds
	}
	if err := CheckComparable(q1, q2, s); err != nil {
		return false, stats, err
	}
	tb := chase.NewTableau(s)
	vars, err := chase.Freeze(tb, q1)
	if err != nil {
		return false, stats, err
	}
	head, err := chase.HeadTerms(tb, q1, vars)
	if err != nil {
		return false, stats, err
	}
	cs, err := tb.RunWithTGDs(egds, tgds, maxRounds)
	if err != nil {
		return false, stats, err
	}
	stats.ChaseIterations = cs.Iterations
	if tb.Failed() {
		stats.ChaseFailed = true
		return true, stats, nil
	}
	var alloc value.Allocator
	for _, c := range q1.Constants() {
		alloc.Reserve(c)
	}
	for _, c := range q2.Constants() {
		alloc.Reserve(c)
	}
	db, valOf, err := tb.ToDatabase(&alloc)
	if err != nil {
		return false, stats, err
	}
	want := make(instance.Tuple, len(head))
	for i, h := range head {
		want[i] = valOf[h]
	}
	ok, es, err := cq.HasAnswer(q2, db, want)
	stats.Nodes = es.Nodes
	return ok, stats, err
}

// EquivalentUnderTheory reports mutual containment under the theory.
func EquivalentUnderTheory(q1, q2 *cq.Query, s *schema.Schema, egds []fd.FD, tgds []chase.TGD, maxRounds int) (bool, Stats, error) {
	ok, st1, err := ContainedUnderTheory(q1, q2, s, egds, tgds, maxRounds)
	if err != nil || !ok {
		return false, st1, err
	}
	ok, st2, err := ContainedUnderTheory(q2, q1, s, egds, tgds, maxRounds)
	st := Stats{
		Nodes:           st1.Nodes + st2.Nodes,
		ChaseIterations: st1.ChaseIterations + st2.ChaseIterations,
		ChaseFailed:     st1.ChaseFailed || st2.ChaseFailed,
	}
	return ok, st, err
}
