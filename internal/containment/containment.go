// Package containment decides conjunctive query containment and
// equivalence — the Chandra–Merlin homomorphism test — both over all
// instances and over instances satisfying key/functional dependencies
// (via the chase), plus query minimization (core computation).
//
// q ⊑ q' (q contained in q') means q(d) ⊆ q'(d) for every database d; the
// paper's query equivalence is mutual containment.  The classical test:
// freeze q into its canonical database, evaluate q' over it, and look for
// q's frozen head among the answers.  Under dependencies, chase the
// canonical database first; a failing chase means q returns no answers on
// any dependency-satisfying database, so containment holds vacuously.
//
// Every check reports a Stats value accounting for the work performed.
// Stats values are combined only through Stats.Merge — numeric fields
// add, boolean fields OR — never by hand-picking fields; a reflection
// test asserts Merge covers every field, so adding a counter without
// extending Merge fails the suite.  On error (cancellation, timeout)
// the returned Stats still carries the partial work done, so callers
// summing Stats reconcile exactly with the obs metrics exported from
// the chase and search layers.
package containment

import (
	"context"
	"fmt"

	"keyedeq/internal/chase"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/obs"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Stats describes the work a containment check did.
type Stats struct {
	// Nodes is the homomorphism search tree size.
	Nodes int64
	// Searches counts homomorphism search invocations (one per
	// containment direction that reaches the search, so ≤2 for an
	// equivalence check).
	Searches int
	// ChaseIterations counts chase passes (zero without dependencies).
	ChaseIterations int
	// ChaseMerges counts equality-class unions the chase performed.
	ChaseMerges int
	// ChaseRevisited counts tuples the semi-naive chase re-examined.
	ChaseRevisited int
	// ChaseFailed records that the chase detected unsatisfiability.
	ChaseFailed bool
}

// Merge folds other into s: numeric fields add, boolean fields OR.
// All Stats combination goes through Merge; a reflection test asserts
// it covers every field of Stats, so a counter added to the struct but
// not to Merge is caught by the suite instead of being silently
// dropped at merge points.
func (s *Stats) Merge(other Stats) {
	s.Nodes += other.Nodes
	s.Searches += other.Searches
	s.ChaseIterations += other.ChaseIterations
	s.ChaseMerges += other.ChaseMerges
	s.ChaseRevisited += other.ChaseRevisited
	s.ChaseFailed = s.ChaseFailed || other.ChaseFailed
}

// SearchStats returns the Stats of one completed homomorphism search
// invocation that visited nodes search-tree nodes.  Callers outside
// this package build Stats only through these constructors (or Merge);
// the mergeonly lint rule enforces it.
func SearchStats(nodes int64) Stats {
	return Stats{Nodes: nodes, Searches: 1}
}

// ChaseStats converts one chase run's counters into Stats, ready to be
// merged into a pair's books.
func ChaseStats(cs chase.Stats) Stats {
	return Stats{
		ChaseIterations: cs.Iterations,
		ChaseMerges:     cs.Merges,
		ChaseRevisited:  cs.Revisited,
	}
}

// FailedChaseStats returns the Stats of a containment decided vacuously
// because the chase proved the left query empty under the dependencies.
func FailedChaseStats() Stats {
	return Stats{ChaseFailed: true}
}

// Contained reports whether q1 ⊑ q2 over all instances of s.
func Contained(q1, q2 *cq.Query, s *schema.Schema) (bool, error) {
	ok, _, err := ContainedUnder(q1, q2, s, nil)
	return ok, err
}

// ContainedUnder reports whether q1 ⊑ q2 over all instances of s
// satisfying deps (single-relation EGDs, e.g. fd.KeyFDs(s)).
func ContainedUnder(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, Stats, error) {
	return ContainedUnderCtx(context.Background(), q1, q2, s, deps)
}

// ContainedUnderCtx is ContainedUnder with cancellation: both the chase
// and the homomorphism search poll ctx and abort with its error when it
// is done.  The search runs in cq.SearchDefault mode (interned unless a
// command layer selected the generic fallback at startup).
func ContainedUnderCtx(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, Stats, error) {
	return ContainedUnderCtxMode(ctx, q1, q2, s, deps, cq.SearchDefault)
}

// ContainedUnderCtxMode is ContainedUnderCtx with an explicit
// homomorphism search mode; the naive mode drives the differential tests
// and the planned-vs-naive benchmark record.
//
//keyedeq:hot -- freeze-chase-search is the decision procedure every engine verdict runs
func ContainedUnderCtxMode(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD, mode cq.SearchMode) (bool, Stats, error) {
	var stats Stats
	if err := CheckComparable(q1, q2, s); err != nil {
		return false, stats, err
	}
	o := obs.FromContext(ctx)
	// Freeze q1 into its canonical database.
	tb := chase.NewTableau(s)
	vars, err := chase.Freeze(tb, q1)
	if err != nil {
		return false, stats, err
	}
	head, err := chase.HeadTerms(tb, q1, vars)
	if err != nil {
		return false, stats, err
	}
	if len(deps) > 0 {
		// Record the chase's partial work even when it is cut short by
		// cancellation, so summed Stats reconcile with the obs counters
		// the chase emitted before aborting.  The span begins here, not
		// at function entry: the early-error returns above and the
		// no-deps path emit no freeze_chase span, so a start captured
		// up there would be a begun-and-never-ended span in the trace.
		chaseStart := o.Time()
		cs, cerr := tb.RunCtx(ctx, deps)
		stats.ChaseIterations = cs.Iterations
		stats.ChaseMerges = cs.Merges
		stats.ChaseRevisited = cs.Revisited
		stats.ChaseFailed = tb.Failed()
		if o.SpansOn() {
			o.EmitSpan(ctx, obs.StageFreezeChase, chaseStart, cerr,
				obs.I("iterations", int64(cs.Iterations)),
				obs.I("merges", int64(cs.Merges)),
				obs.I("revisited", int64(cs.Revisited)),
				obs.B("failed", tb.Failed()))
		}
		if cerr != nil {
			return false, stats, cerr
		}
	}
	if tb.Failed() {
		// q1 is empty on every deps-satisfying database.  Freezing alone
		// can fail (query equalities forcing distinct constants), so set
		// the flag here too, not only on the chase path above.
		stats.ChaseFailed = true
		return true, stats, nil
	}
	var alloc value.Allocator
	for _, c := range q1.Constants() {
		alloc.Reserve(c)
	}
	for _, c := range q2.Constants() {
		alloc.Reserve(c)
	}
	db, valOf, err := tb.ToDatabase(&alloc)
	if err != nil {
		return false, stats, err
	}
	want := make(instance.Tuple, len(head))
	for i, h := range head {
		want[i] = valOf[h]
	}
	ok, _, es, err := cq.FindAnswerBindingCtxMode(ctx, q2, db, want, mode)
	stats.Nodes = es.Nodes
	stats.Searches = 1
	return ok, stats, err
}

// Equivalent reports whether q1 ≡ q2 over all instances of s.
func Equivalent(q1, q2 *cq.Query, s *schema.Schema) (bool, error) {
	ok, _, err := EquivalentUnder(q1, q2, s, nil)
	return ok, err
}

// EquivalentUnder reports mutual containment under deps.
func EquivalentUnder(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, Stats, error) {
	return EquivalentUnderCtx(context.Background(), q1, q2, s, deps)
}

// EquivalentUnderMode is EquivalentUnder with an explicit homomorphism
// search mode; the naive mode drives differential tests and benchmarks.
func EquivalentUnderMode(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD, mode cq.SearchMode) (bool, Stats, error) {
	return EquivalentUnderCtxMode(context.Background(), q1, q2, s, deps, mode)
}

// EquivalentUnderCtx is EquivalentUnder with cancellation via ctx.
func EquivalentUnderCtx(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, Stats, error) {
	return EquivalentUnderCtxMode(ctx, q1, q2, s, deps, cq.SearchDefault)
}

// EquivalentUnderCtxMode is EquivalentUnderCtx with an explicit
// homomorphism search mode.
func EquivalentUnderCtxMode(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD, mode cq.SearchMode) (bool, Stats, error) {
	ok, st1, err := ContainedUnderCtxMode(ctx, q1, q2, s, deps, mode)
	if err != nil || !ok {
		return false, st1, err
	}
	ok, st2, err := ContainedUnderCtxMode(ctx, q2, q1, s, deps, mode)
	st1.Merge(st2)
	return ok, st1, err
}

// CheckComparable validates both queries against s and requires equal
// head types — the precondition every containment test shares.  The
// batch engine calls it once per pair before dispatching workers.
func CheckComparable(q1, q2 *cq.Query, s *schema.Schema) error {
	if err := q1.Validate(s); err != nil {
		return fmt.Errorf("containment: left query: %v", err)
	}
	if err := q2.Validate(s); err != nil {
		return fmt.Errorf("containment: right query: %v", err)
	}
	t1, err := q1.HeadType(s)
	if err != nil {
		return err
	}
	t2, err := q2.HeadType(s)
	if err != nil {
		return err
	}
	if len(t1) != len(t2) {
		return fmt.Errorf("containment: arity %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			return fmt.Errorf("containment: head position %d has type %v vs %v", i, t1[i], t2[i])
		}
	}
	return nil
}

// Minimize computes a core of q over s: an equivalent query with a
// minimal set of body atoms, obtained by repeatedly deleting atoms whose
// deletion preserves equivalence.  Deps, when non-nil, minimizes under the
// dependencies instead.
func Minimize(q *cq.Query, s *schema.Schema, deps []fd.FD) (*cq.Query, error) {
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	cur := q.Clone()
	if len(deps) > 0 {
		// Make dependency-forced equalities explicit first, so that
		// atom removal can remap head variables through them.
		chased, unsat, err := chase.ChaseQuery(s, deps, q)
		if err != nil {
			return nil, err
		}
		if !unsat {
			cur = chased
		}
	}
	for {
		removed := false
		for i := 0; i < len(cur.Body); i++ {
			if len(cur.Body) == 1 {
				break
			}
			cand, ok := removeAtom(cur, i)
			if !ok {
				continue
			}
			if err := cand.Validate(s); err != nil {
				continue
			}
			eq, _, err := EquivalentUnder(cand, cur, s, deps)
			if err != nil {
				return nil, err
			}
			if eq {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// removeAtom builds q without body atom i, remapping head variables and
// equalities so the equality classes restricted to the remaining
// variables are preserved.  It reports ok=false when a head variable's
// class has no remaining member (the atom is not removable).
func removeAtom(q *cq.Query, i int) (*cq.Query, bool) {
	eq := cq.NewEqClasses(q)
	remaining := make(map[cq.Var]bool)
	out := &cq.Query{HeadRel: q.HeadRel}
	for j, a := range q.Body {
		if j == i {
			continue
		}
		out.Body = append(out.Body, cq.Atom{Rel: a.Rel, Vars: append([]cq.Var(nil), a.Vars...)})
		for _, v := range a.Vars {
			remaining[v] = true
		}
	}
	// Group remaining variables by class.
	classes := make(map[cq.Var][]cq.Var)
	for _, a := range q.Body {
		for _, v := range a.Vars {
			if remaining[v] {
				root := eq.Find(v)
				classes[root] = append(classes[root], v)
			}
		}
	}
	// Head terms: map each variable to a remaining member of its class.
	for _, t := range q.Head {
		if t.IsConst {
			out.Head = append(out.Head, t)
			continue
		}
		members := classes[eq.Find(t.Var)]
		if len(members) == 0 {
			return nil, false
		}
		out.Head = append(out.Head, cq.Term{Var: members[0]})
	}
	// Equalities: chain the remaining members of each class, and re-bind
	// class constants.
	for root, members := range classes {
		for k := 1; k < len(members); k++ {
			out.Eqs = append(out.Eqs, cq.Equality{Left: members[0], Right: cq.Term{Var: members[k]}})
		}
		if c, ok := eq.Const(root); ok {
			out.Eqs = append(out.Eqs, cq.Equality{Left: members[0], Right: cq.C(c)})
		}
	}
	return out, true
}
