package containment

import (
	"reflect"
	"testing"
)

// TestMergeCoversEveryField guards the Stats.Merge contract: numeric
// fields add, boolean fields OR, and no field of Stats may be skipped.
// It builds a probe value via reflection with every numeric field set
// to a distinct non-zero value and every bool set, merges it into a
// zero Stats twice, and checks each field doubled (numeric) or stayed
// set (bool).  A field added to Stats but forgotten in Merge surfaces
// here as an unchanged zero.
func TestMergeCoversEveryField(t *testing.T) {
	probe := Stats{}
	pv := reflect.ValueOf(&probe).Elem()
	st := pv.Type()
	for i := 0; i < st.NumField(); i++ {
		f := pv.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(i + 3)) // distinct, non-zero per field
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(uint64(i + 3))
		case reflect.Float32, reflect.Float64:
			f.SetFloat(float64(i + 3))
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("Stats.%s has kind %v: extend Merge and this test for it",
				st.Field(i).Name, f.Kind())
		}
	}

	var acc Stats
	acc.Merge(probe)
	acc.Merge(probe)
	av := reflect.ValueOf(acc)
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		got, want := av.Field(i), pv.Field(i)
		switch got.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if got.Int() != 2*want.Int() {
				t.Errorf("Merge drops or mishandles Stats.%s: got %d, want %d",
					name, got.Int(), 2*want.Int())
			}
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if got.Uint() != 2*want.Uint() {
				t.Errorf("Merge drops or mishandles Stats.%s: got %d, want %d",
					name, got.Uint(), 2*want.Uint())
			}
		case reflect.Float32, reflect.Float64:
			if got.Float() != 2*want.Float() {
				t.Errorf("Merge drops or mishandles Stats.%s: got %v, want %v",
					name, got.Float(), 2*want.Float())
			}
		case reflect.Bool:
			if !got.Bool() {
				t.Errorf("Merge drops Stats.%s: bool did not OR through", name)
			}
		}
	}

	// ORing a set bool into an already-set accumulator must not clear it,
	// and merging a zero value must change nothing.
	before := acc
	acc.Merge(Stats{})
	if acc != before {
		t.Errorf("merging zero Stats changed the accumulator: %+v -> %+v", before, acc)
	}
}
