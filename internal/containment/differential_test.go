package containment

import (
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Differential validation of the Chandra–Merlin test: for a pool of small
// queries over E(T1, T1), compare Contained against the ground truth
// computed by enumerating EVERY graph over a 2-node domain (2^4 = 16
// instances).  Soundness needs all instances to agree; completeness needs
// this exhaustive slice to expose a counterexample whenever containment
// fails — which it does for the pool below, because each non-containment
// among these queries has a witness graph with ≤2 nodes (checked by the
// homomorphism counterexamples being 2-node graphs: an edge, a loop, two
// loops, etc.).  Together with the randomized soundness fuzz this pins
// the implementation from both sides.
func TestContainmentDifferentialExhaustive(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	pool := []*cq.Query{
		cq.MustParse("V(X) :- E(X, Y)."),                        // out-edge
		cq.MustParse("V(Y) :- E(X, Y)."),                        // in-edge
		cq.MustParse("V(X) :- E(X, Y), X = Y."),                 // self-loop
		cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2."),      // 2-path start
		cq.MustParse("V(Z) :- E(X, Y), E(Y2, Z), Y = Y2."),      // 2-path end
		cq.MustParse("V(X) :- E(X, Y), E(A, B), Y = A, B = X."), // on a 2-cycle
		cq.MustParse("V(X) :- E(X, Y), E(A, B)."),               // out-edge + any edge
	}
	// Enumerate all graphs on nodes {1, 2}: subsets of 4 possible edges.
	type edge struct{ a, b int64 }
	edges := []edge{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	var dbs []*instance.Database
	for mask := 0; mask < 1<<len(edges); mask++ {
		d := instance.NewDatabase(s)
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				d.MustInsert("E", value.Value{Type: 1, N: e.a}, value.Value{Type: 1, N: e.b})
			}
		}
		dbs = append(dbs, d)
	}
	for i, q1 := range pool {
		for j, q2 := range pool {
			claim, err := Contained(q1, q2, s)
			if err != nil {
				t.Fatal(err)
			}
			truth := true
			for _, d := range dbs {
				a1, err := cq.Eval(q1, d)
				if err != nil {
					t.Fatal(err)
				}
				a2, err := cq.Eval(q2, d)
				if err != nil {
					t.Fatal(err)
				}
				if !a1.SubsetOf(a2) {
					truth = false
					break
				}
			}
			if claim && !truth {
				t.Errorf("UNSOUND: pool[%d] ⊑ pool[%d] claimed, instance refutes\nq1: %s\nq2: %s",
					i, j, q1, q2)
			}
			if !claim && truth {
				// The exhaustive slice found no counterexample.  For
				// this pool every genuine non-containment has a ≤2-node
				// witness, so this indicates incompleteness.
				t.Errorf("INCOMPLETE(?): pool[%d] ⋢ pool[%d] claimed but no 2-node counterexample\nq1: %s\nq2: %s",
					i, j, q1, q2)
			}
		}
	}
}

// The same differential check under a key dependency: enumerate all
// key-satisfying instances of R(k*, a) over a 2-element domain.
func TestContainmentUnderKeysDifferential(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	pool := []*cq.Query{
		cq.MustParse("V(K, A) :- R(K, A)."),
		cq.MustParse("V(A, K) :- R(K, A)."),
		cq.MustParse("V(K, A) :- R(K, A), R(K2, B), K = K2."),
		cq.MustParse("V(K, B) :- R(K, A), R(K2, B), K = K2."),
		cq.MustParse("V(K, K) :- R(K, A)."),
		cq.MustParse("V(K, A) :- R(K, A), K = A."),
	}
	// All key-satisfying instances: each key 1,2 absent or mapped to a
	// value in {1,2}: 3^2 = 9 instances.
	var dbs []*instance.Database
	for v1 := 0; v1 <= 2; v1++ {
		for v2 := 0; v2 <= 2; v2++ {
			d := instance.NewDatabase(s)
			if v1 > 0 {
				d.MustInsert("R", value.Value{Type: 1, N: 1}, value.Value{Type: 1, N: int64(v1)})
			}
			if v2 > 0 {
				d.MustInsert("R", value.Value{Type: 1, N: 2}, value.Value{Type: 1, N: int64(v2)})
			}
			if !d.SatisfiesKeys() {
				t.Fatal("generator broke keys")
			}
			dbs = append(dbs, d)
		}
	}
	for i, q1 := range pool {
		for j, q2 := range pool {
			claim, _, err := ContainedUnder(q1, q2, s, deps)
			if err != nil {
				t.Fatal(err)
			}
			truth := true
			for _, d := range dbs {
				a1, _ := cq.Eval(q1, d)
				a2, _ := cq.Eval(q2, d)
				if !a1.SubsetOf(a2) {
					truth = false
					break
				}
			}
			if claim && !truth {
				t.Errorf("UNSOUND under keys: pool[%d] ⊑ pool[%d]\nq1: %s\nq2: %s", i, j, q1, q2)
			}
			if !claim && truth {
				t.Errorf("INCOMPLETE(?) under keys: pool[%d] ⋢ pool[%d]\nq1: %s\nq2: %s", i, j, q1, q2)
			}
		}
	}
}
