package containment

import (
	"strings"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
)

func TestFindHomomorphismBasic(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	q1 := cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	q2 := cq.MustParse("V(A) :- E(A, B).")
	h, ok, err := FindHomomorphism(q1, q2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("containment should hold")
	}
	if err := VerifyHomomorphism(q1, q2, h, s, nil); err != nil {
		t.Errorf("witness fails verification: %v (h = %s)", err, h)
	}
	// A must map to X (the head), B to something in Y's class.
	if h["A"].IsConst || h["A"].Var != "X" {
		t.Errorf("A should map to X: %s", h)
	}
}

func TestFindHomomorphismAbsent(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	q1 := cq.MustParse("V(A) :- E(A, B).")
	q2 := cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	_, ok, err := FindHomomorphism(q1, q2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("edge ⋢ 2-path; no homomorphism should exist")
	}
}

func TestFindHomomorphismWithConstants(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	q1 := cq.MustParse("V(X) :- E(X, Y), Y = T1:5.")
	q2 := cq.MustParse("V(A) :- E(A, B).")
	h, ok, err := FindHomomorphism(q1, q2, s, nil)
	if err != nil || !ok {
		t.Fatalf("containment should hold: %v %v", ok, err)
	}
	if err := VerifyHomomorphism(q1, q2, h, s, nil); err != nil {
		t.Errorf("witness fails: %v (h = %s)", err, h)
	}
	// B maps into Y's class; since Y is bound to the constant, either a
	// variable of that class or the constant itself is acceptable.
	img := h["B"]
	if img.IsConst && img.Const.N != 5 {
		t.Errorf("B maps to wrong constant: %s", h)
	}
}

func TestFindHomomorphismUnderKeys(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	q1 := cq.MustParse("V(K, A, B) :- R(K, A), R(K2, B), K = K2.")
	q2 := cq.MustParse("V(K, A, A) :- R(K, A).")
	// Without the key no homomorphism exists; with it the chase merges
	// A and B, enabling one.
	_, ok, err := FindHomomorphism(q1, q2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("containment should fail without keys")
	}
	h, ok, err := FindHomomorphism(q1, q2, s, deps)
	if err != nil || !ok {
		t.Fatalf("containment should hold under keys: %v %v", ok, err)
	}
	if err := VerifyHomomorphism(q1, q2, h, s, deps); err != nil {
		t.Errorf("witness fails under keys: %v (h = %s)", err, h)
	}
}

func TestFindHomomorphismVacuous(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	q1 := cq.MustParse("V(K) :- R(K, A), R(K2, B), K = K2, A = T1:1, B = T1:2.")
	q2 := cq.MustParse("V(K) :- R(K, A).")
	h, ok, err := FindHomomorphism(q1, q2, s, deps)
	if err != nil || !ok {
		t.Fatalf("vacuous containment should hold: %v %v", ok, err)
	}
	if h != nil {
		t.Error("vacuous containment should have nil witness")
	}
	if err := VerifyHomomorphism(q1, q2, h, s, deps); err != nil {
		t.Errorf("vacuous verify should pass: %v", err)
	}
}

func TestVerifyHomomorphismRejectsBadWitness(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	q1 := cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	q2 := cq.MustParse("V(A) :- E(A, B).")
	bad := Homomorphism{"A": cq.Term{Var: "Z"}, "B": cq.Term{Var: "X"}}
	if err := VerifyHomomorphism(q1, q2, bad, s, nil); err == nil {
		t.Error("bad witness accepted")
	}
	missing := Homomorphism{"A": cq.Term{Var: "X"}}
	if err := VerifyHomomorphism(q1, q2, missing, s, nil); err == nil {
		t.Error("incomplete witness accepted")
	}
}

func TestHomomorphismAgreesWithContained(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	pool := []*cq.Query{
		cq.MustParse("V(X) :- E(X, Y)."),
		cq.MustParse("V(X) :- E(X, Y), X = Y."),
		cq.MustParse("V(X) :- E(X, Y), E(Y2, Z), Y = Y2."),
		cq.MustParse("V(X) :- E(X, Y), E(A, B), Y = A, B = X."),
	}
	for i, q1 := range pool {
		for j, q2 := range pool {
			want, err := Contained(q1, q2, s)
			if err != nil {
				t.Fatal(err)
			}
			h, got, err := FindHomomorphism(q1, q2, s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("FindHomomorphism disagrees with Contained on (%d,%d)", i, j)
			}
			if got {
				if err := VerifyHomomorphism(q1, q2, h, s, nil); err != nil {
					t.Errorf("(%d,%d): witness fails: %v", i, j, err)
				}
			}
		}
	}
}

func TestHomomorphismString(t *testing.T) {
	h := Homomorphism{"B": cq.Term{Var: "X"}, "A": cq.Term{Var: "Y"}}
	str := h.String()
	if !strings.Contains(str, "A -> Y") || !strings.Contains(str, "B -> X") {
		t.Errorf("String = %q", str)
	}
	if strings.Index(str, "A ->") > strings.Index(str, "B ->") {
		t.Errorf("not sorted: %q", str)
	}
}
