package program

import (
	"strings"
	"testing"

	"keyedeq/internal/schema"
)

func TestParseErrorsCarryLineAndColumn(t *testing.T) {
	base := schema.MustParse("E(src:T1, dst:T1)")
	cases := []struct {
		name, text, wantPos string
	}{
		{
			"bad rule on line 2",
			"def v(a:T1)\nv(X) :- E(X,, Y).",
			"2:13",
		},
		{
			"bad def line",
			"# p\ndef v(a)",
			"2:1",
		},
		{
			"undeclared view rule",
			"def v(a:T1)\nw(X) :- E(X, Y).",
			"2:1",
		},
		{
			"duplicate def",
			"def v(a:T1)\ndef v(a:T1)",
			"2:1",
		},
		{
			"shadowed base relation",
			"def E(a:T1, b:T1)",
			"1:1",
		},
	}
	for _, c := range cases {
		_, err := Parse(base, c.text)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantPos) {
			t.Errorf("%s: error %q does not carry position %s", c.name, err, c.wantPos)
		}
	}
}

func TestParsedRulesCarryPositions(t *testing.T) {
	base := schema.MustParse("E(src:T1, dst:T1)")
	p, err := Parse(base, "# program\ndef v(a:T1, b:T1)\nv(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.")
	if err != nil {
		t.Fatal(err)
	}
	q := p.Views[0].Def.Disjuncts[0]
	if q.Pos.Line != 3 || q.Pos.Col != 1 {
		t.Errorf("rule pos = %v, want 3:1", q.Pos)
	}
	if q.Eqs[0].Pos.Line != 3 || q.Eqs[0].Pos.Col != 31 {
		t.Errorf("rule equality pos = %v, want 3:31", q.Eqs[0].Pos)
	}
}
