package program

import (
	"math/rand"
	"strings"
	"testing"

	"keyedeq/internal/gen"
	"keyedeq/internal/ucq"
)

const twoHopProgram = `
# two strata over the edge relation
def twohop(src:T1, dst:T1)
twohop(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.
def fourhop(src:T1, dst:T1)
fourhop(X, Z) :- twohop(X, Y), twohop(Y2, Z), Y = Y2.
`

func TestParseAndValidate(t *testing.T) {
	base := gen.GraphSchema()
	p := MustParse(base, twoHopProgram)
	if len(p.Views) != 2 {
		t.Fatalf("views = %d", len(p.Views))
	}
	if p.Views[0].Scheme.Name != "twohop" || p.Views[1].Scheme.Name != "fourhop" {
		t.Errorf("view order wrong")
	}
	// Round trip through String.
	p2, err := Parse(base, p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p.String() != p2.String() {
		t.Errorf("round trip changed program:\n%s\nvs\n%s", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	base := gen.GraphSchema()
	bad := []string{
		"def E(src:T1)",                              // shadows base
		"def v(x*:T1)\nv(X) :- E(X, Y).",             // keyed view
		"def v(x:T1)\ndef v(x:T1)\nv(X) :- E(X, Y).", // dup
		"v(X) :- E(X, Y).",                           // undeclared
		"def v(x:T1)",                                // no rules
		"def v(x:T1)\nv(X) :- ZZ(X).",                // unknown relation
		"def v(x:T1)\nv(X, Y) :- E(X, Y).",           // arity mismatch
		"def v(x:T9)\nv(X) :- E(X, Y).",              // type mismatch
		"def v(x:T1)\nbroken",                        // rule parse error
		"def v((\nv(X) :- E(X, Y).",                  // def parse error
		// Forward reference (recursion-like): w uses v declared later.
		"def w(x:T1)\nw(X) :- v(X).\ndef v(x:T1)\nv(X) :- E(X, Y).",
	}
	for i, text := range bad {
		if _, err := Parse(base, text); err == nil {
			t.Errorf("bad program %d accepted:\n%s", i, text)
		}
	}
}

func TestEvalStrata(t *testing.T) {
	base := gen.GraphSchema()
	p := MustParse(base, twoHopProgram)
	d := gen.PathGraph(5) // 1->2->3->4->5
	ext, err := p.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	two := ext.Relation("twohop")
	if two.Len() != 3 { // (1,3),(2,4),(3,5)
		t.Errorf("twohop = %s", two)
	}
	four := ext.Relation("fourhop")
	if four.Len() != 1 { // (1,5)
		t.Errorf("fourhop = %s", four)
	}
}

func TestUnfoldMatchesEval(t *testing.T) {
	base := gen.GraphSchema()
	p := MustParse(base, twoHopProgram)
	u, err := p.Unfold("fourhop")
	if err != nil {
		t.Fatal(err)
	}
	// fourhop unfolds to a single 4-chain CQ over E.
	if len(u.Disjuncts) != 1 {
		t.Fatalf("unfold disjuncts = %d:\n%s", len(u.Disjuncts), u)
	}
	if len(u.Disjuncts[0].Body) != 4 {
		t.Errorf("unfolded body = %d atoms", len(u.Disjuncts[0].Body))
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		d := gen.RandomGraph(rng, 4, rng.Intn(10))
		ext, err := p.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ucq.Eval(u, d)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Relation("fourhop").Equal(direct) {
			t.Fatalf("unfold disagrees with evaluation:\n%s\nvs\n%s",
				ext.Relation("fourhop"), direct)
		}
	}
}

func TestUnfoldUnions(t *testing.T) {
	base := gen.GraphSchema()
	p := MustParse(base, `
def step(src:T1, dst:T1)
step(X, Y) :- E(X, Y).
step(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.
def reach(src:T1, dst:T1)
reach(X, Z) :- step(X, Y), step(Y2, Z), Y = Y2.
`)
	u, err := p.Unfold("reach")
	if err != nil {
		t.Fatal(err)
	}
	// 2 choices × 2 choices = 4 disjuncts (paths of length 2,3,3,4).
	if len(u.Disjuncts) != 4 {
		t.Fatalf("disjuncts = %d:\n%s", len(u.Disjuncts), u)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		d := gen.RandomGraph(rng, 4, rng.Intn(9))
		ext, err := p.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ucq.Eval(u, d)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Relation("reach").Equal(direct) {
			t.Fatalf("union unfold disagrees on %s", d)
		}
	}
}

func TestUnfoldHandlesConstantsInHeads(t *testing.T) {
	base := gen.GraphSchema()
	p := MustParse(base, `
def tagged(src:T1, tag:T1)
tagged(X, T1:9) :- E(X, Y).
def projected(src:T1)
projected(X) :- tagged(X, W), W = T1:9.
def filtered(src:T1)
filtered(X) :- tagged(X, W), W = T1:8.
`)
	u, err := p.Unfold("projected")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		d := gen.RandomGraph(rng, 3, rng.Intn(6))
		ext, _ := p.Eval(d)
		direct, err := ucq.Eval(u, d)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Relation("projected").Equal(direct) {
			t.Fatalf("constant unfold disagrees on %s", d)
		}
	}
	// The conflicting constant makes `filtered` empty everywhere.
	u2, err := p.Unfold("filtered")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		d := gen.RandomGraph(rng, 3, rng.Intn(6))
		ext, _ := p.Eval(d)
		if ext.Relation("filtered").Len() != 0 {
			t.Fatalf("filtered should be empty: %s", ext.Relation("filtered"))
		}
		direct, err := ucq.Eval(u2, d)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Len() != 0 {
			t.Fatalf("unfolded filtered should be empty: %s", direct)
		}
	}
}

func TestProgramEquivalence(t *testing.T) {
	base := gen.GraphSchema()
	// fourhop defined via twohop∘twohop vs directly as a 4-chain.
	p1 := MustParse(base, twoHopProgram)
	p2 := MustParse(base, `
def fourhop(src:T1, dst:T1)
fourhop(X, W) :- E(X, A), E(A2, B), E(B2, C), E(C2, W), A = A2, B = B2, C = C2.
`)
	eq, err := Equivalent(p1, "fourhop", p2, "fourhop", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("factored and direct fourhop should be equivalent")
	}
	// And a genuinely different view is detected.
	p3 := MustParse(base, `
def fourhop(src:T1, dst:T1)
fourhop(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.
`)
	eq, err = Equivalent(p1, "fourhop", p3, "fourhop", nil)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("twohop is not fourhop")
	}
}

func TestUnfoldErrors(t *testing.T) {
	base := gen.GraphSchema()
	p := MustParse(base, twoHopProgram)
	if _, err := p.Unfold("nope"); err == nil {
		t.Error("unknown view accepted")
	}
}

func TestEvalMissingBaseRelation(t *testing.T) {
	// A program over base relation F evaluated against an instance that
	// only has E must fail cleanly.
	wrongBase := gen.GraphSchema()
	wrongBase.Relations[0].Name = "F"
	pw := MustParse(wrongBase, "def v(x:T1)\nv(X) :- F(X, Y).")
	if _, err := pw.Eval(gen.PathGraph(2)); err == nil {
		t.Error("mismatched base should error")
	}
}

func TestStringContainsDefs(t *testing.T) {
	p := MustParse(gen.GraphSchema(), twoHopProgram)
	s := p.String()
	if !strings.Contains(s, "def twohop(src:T1, dst:T1)") {
		t.Errorf("String:\n%s", s)
	}
}
