// Package program implements non-recursive Datalog over the paper's
// conjunctive query language: an ordered sequence of derived relations
// (views), each defined by a union of conjunctive queries over the base
// schema and the previously defined views.  Programs evaluate by
// materializing the strata in order, and *unfold* into plain UCQs over
// the base schema — so program equivalence reduces to UCQ equivalence
// (Sagiv–Yannakakis), optionally under the base schema's key
// dependencies.
package program

import (
	"fmt"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/ucq"
	"keyedeq/internal/value"
)

// View is one stratum: a derived relation scheme and its UCQ definition
// over the layer below.
type View struct {
	Scheme *schema.Relation
	Def    *ucq.Query
}

// Program is a non-recursive Datalog program over a base schema.
type Program struct {
	Base  *schema.Schema
	Views []View
}

// Parse reads a program:
//
//	def twohop(src:T1, dst:T1)
//	twohop(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.
//	def fourhop(src:T1, dst:T1)
//	fourhop(X, Z) :- twohop(X, Y), twohop(Y2, Z), Y = Y2.
//
// Each "def" line declares a derived relation (same syntax as schema
// relations, keys not allowed); subsequent rule lines with that head
// name define it.  Rules may use the base schema and previously declared
// views only.
func Parse(base *schema.Schema, text string) (*Program, error) {
	p := &Program{Base: base}
	byName := map[string]int{}
	for lineno, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pos := cq.Pos{Line: lineno + 1, Col: cq.LineIndent(raw) + 1}
		if strings.HasPrefix(line, "def ") {
			rel, err := schema.ParseRelation(strings.TrimSpace(line[4:]))
			if err != nil {
				return nil, fmt.Errorf("program: %s: %v", pos, err)
			}
			if rel.Keyed() {
				return nil, fmt.Errorf("program: %s: derived relation %q cannot declare a key", pos, rel.Name)
			}
			if base.Relation(rel.Name) != nil {
				return nil, fmt.Errorf("program: %s: %q shadows a base relation", pos, rel.Name)
			}
			if _, dup := byName[rel.Name]; dup {
				return nil, fmt.Errorf("program: %s: %q defined twice", pos, rel.Name)
			}
			byName[rel.Name] = len(p.Views)
			p.Views = append(p.Views, View{Scheme: rel, Def: &ucq.Query{}})
			continue
		}
		q, err := cq.ParseAt(line, pos)
		if err != nil {
			return nil, fmt.Errorf("program: %s", cq.PositionedMsg(err, pos))
		}
		i, ok := byName[q.HeadRel]
		if !ok {
			return nil, fmt.Errorf("program: %s: rule for undeclared view %q", q.Pos, q.HeadRel)
		}
		p.Views[i].Def.Disjuncts = append(p.Views[i].Def.Disjuncts, q)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse but panics on error.
func MustParse(base *schema.Schema, text string) *Program {
	p, err := Parse(base, text)
	invariant.Must(err)
	return p
}

// SchemaAt returns the schema visible to stratum i's rules: the base
// relations plus views 0..i-1.  i = len(Views) gives the full extended
// schema.
func (p *Program) SchemaAt(i int) *schema.Schema {
	s := &schema.Schema{}
	s.Relations = append(s.Relations, p.Base.Relations...)
	for j := 0; j < i && j < len(p.Views); j++ {
		s.Relations = append(s.Relations, p.Views[j].Scheme)
	}
	return s
}

// Validate checks stratification: each view has at least one rule, every
// rule is a valid CQ over the layer below with the view's head type, and
// no rule references the view itself or later views (non-recursive).
func (p *Program) Validate() error {
	if err := p.Base.Validate(); err != nil {
		return err
	}
	for i, v := range p.Views {
		if len(v.Def.Disjuncts) == 0 {
			return fmt.Errorf("program: view %q has no rules", v.Scheme.Name)
		}
		layer := p.SchemaAt(i)
		for _, q := range v.Def.Disjuncts {
			if err := q.Validate(layer); err != nil {
				return fmt.Errorf("program: view %q: %v", v.Scheme.Name, err)
			}
			ht, err := q.HeadType(layer)
			if err != nil {
				return err
			}
			if len(ht) != v.Scheme.Arity() {
				return fmt.Errorf("program: view %q rule has arity %d, want %d", v.Scheme.Name, len(ht), v.Scheme.Arity())
			}
			for pidx, t := range ht {
				if t != v.Scheme.Attrs[pidx].Type {
					return fmt.Errorf("program: view %q rule position %d has type %v, want %v",
						v.Scheme.Name, pidx, t, v.Scheme.Attrs[pidx].Type)
				}
			}
		}
	}
	return nil
}

// Eval materializes every view in order and returns the extended
// database (base relations plus one relation per view).
func (p *Program) Eval(d *instance.Database) (*instance.Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ext := instance.NewDatabase(p.SchemaAt(len(p.Views)))
	for i, r := range p.Base.Relations {
		src := d.Relation(r.Name)
		if src == nil {
			return nil, fmt.Errorf("program: instance missing base relation %q", r.Name)
		}
		for _, t := range src.Tuples() {
			if err := ext.Relations[i].Insert(t); err != nil {
				return nil, err
			}
		}
	}
	for i, v := range p.Views {
		ans, err := ucq.Eval(v.Def, ext)
		if err != nil {
			return nil, fmt.Errorf("program: evaluating %q: %v", v.Scheme.Name, err)
		}
		dst := ext.Relations[len(p.Base.Relations)+i]
		for _, t := range ans.Tuples() {
			if err := dst.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return ext, nil
}

// Unfold expands the named view into a union of conjunctive queries over
// the BASE schema only, by repeatedly inlining view atoms with each of
// their defining disjuncts.
func (p *Program) Unfold(view string) (*ucq.Query, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idx := -1
	for i, v := range p.Views {
		if v.Scheme.Name == view {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("program: no view %q", view)
	}
	defs := map[string]*ucq.Query{}
	for _, v := range p.Views {
		defs[v.Scheme.Name] = v.Def
	}
	out := &ucq.Query{}
	// Stratification guarantees termination; the step cap is a backstop
	// against pathological blowup (every inline strictly lowers the
	// stratum of the replaced atom).
	const maxSteps = 100_000
	steps := 0
	var expand func(q *cq.Query, depth int) error
	expand = func(q *cq.Query, depth int) error {
		steps++
		if steps > maxSteps {
			return fmt.Errorf("program: unfolding exceeded %d steps", maxSteps)
		}
		// Find the first view atom.
		at := -1
		for i, a := range q.Body {
			if _, isView := defs[a.Rel]; isView {
				at = i
				break
			}
		}
		if at < 0 {
			out.Disjuncts = append(out.Disjuncts, q)
			return nil
		}
		for di, dq := range defs[q.Body[at].Rel].Disjuncts {
			inlined, err := inlineAtom(q, at, dq, fmt.Sprintf("u%d_%d_", depth, di), p.SchemaAt(len(p.Views)))
			if err != nil {
				return err
			}
			if err := expand(inlined, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, q := range p.Views[idx].Def.Disjuncts {
		if err := expand(q.Clone(), 0); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(p.Base); err != nil {
		return nil, fmt.Errorf("program: unfolded query invalid: %v", err)
	}
	return out, nil
}

// inlineAtom replaces q's body atom at index at with the body of def
// (renamed apart with the prefix), resolving the atom's placeholder
// variables through def's head and rewriting q's head and equality list
// accordingly.
func inlineAtom(q *cq.Query, at int, def *cq.Query, prefix string, layer *schema.Schema) (*cq.Query, error) {
	d := def.Rename(prefix)
	removed := q.Body[at]
	if len(d.Head) != len(removed.Vars) {
		return nil, fmt.Errorf("program: arity mismatch inlining %q", removed.Rel)
	}
	resolve := map[cq.Var]cq.Term{}
	for pidx, v := range removed.Vars {
		resolve[v] = d.Head[pidx]
	}
	termOf := func(t cq.Term) cq.Term {
		if t.IsConst {
			return t
		}
		if r, ok := resolve[t.Var]; ok {
			return r
		}
		return t
	}
	out := &cq.Query{HeadRel: q.HeadRel}
	for i, a := range q.Body {
		if i == at {
			out.Body = append(out.Body, d.Body...)
			continue
		}
		out.Body = append(out.Body, cq.Atom{Rel: a.Rel, Vars: append([]cq.Var(nil), a.Vars...)})
	}
	out.Eqs = append(out.Eqs, d.Eqs...)
	for _, e := range q.Eqs {
		l := termOf(cq.Term{Var: e.Left})
		r := termOf(e.Right)
		switch {
		case !l.IsConst:
			out.Eqs = append(out.Eqs, cq.Equality{Left: l.Var, Right: r})
		case !r.IsConst:
			out.Eqs = append(out.Eqs, cq.Equality{Left: r.Var, Right: l})
		case l.Const == r.Const:
			// trivially true
		default:
			// Unsatisfiable: bind an arbitrary body variable to two
			// distinct constants of its own type (the query is empty).
			v, t, ok := anyVarTyped(out, layer)
			if !ok {
				return nil, fmt.Errorf("program: unsatisfiable inline with empty body")
			}
			out.Eqs = append(out.Eqs,
				cq.Equality{Left: v, Right: cq.C(value.Value{Type: t, N: 1})},
				cq.Equality{Left: v, Right: cq.C(value.Value{Type: t, N: 2})},
			)
		}
	}
	for _, t := range q.Head {
		out.Head = append(out.Head, termOf(t))
	}
	return out, nil
}

// anyVarTyped picks a body placeholder of q and its attribute type under
// the layer schema.
func anyVarTyped(q *cq.Query, layer *schema.Schema) (cq.Var, value.Type, bool) {
	for _, a := range q.Body {
		rel := layer.Relation(a.Rel)
		if rel == nil {
			continue
		}
		for i, v := range a.Vars {
			return v, rel.Attrs[i].Type, true
		}
	}
	return "", value.NoType, false
}

// Equivalent reports whether two programs' views compute the same answers
// on every base instance satisfying deps: both are unfolded to base UCQs
// and compared with Sagiv–Yannakakis.
func Equivalent(p1 *Program, view1 string, p2 *Program, view2 string, deps []fd.FD) (bool, error) {
	u1, err := p1.Unfold(view1)
	if err != nil {
		return false, err
	}
	u2, err := p2.Unfold(view2)
	if err != nil {
		return false, err
	}
	if !schema.Isomorphic(p1.Base, p1.Base) { // cheap sanity; bases must be shared by convention
		return false, fmt.Errorf("program: bases differ")
	}
	return ucq.Equivalent(u1, u2, p1.Base, deps)
}

// String renders the program in its input format.
func (p *Program) String() string {
	var b strings.Builder
	for _, v := range p.Views {
		b.WriteString("def ")
		b.WriteString(v.Scheme.String())
		b.WriteByte('\n')
		for _, q := range v.Def.Disjuncts {
			qq := q.Clone()
			qq.HeadRel = v.Scheme.Name
			b.WriteString(qq.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
