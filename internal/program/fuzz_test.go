package program

import (
	"testing"

	"keyedeq/internal/gen"
)

func FuzzParse(f *testing.F) {
	seeds := []string{
		twoHopProgram,
		"def v(x:T1)\nv(X) :- E(X, Y).",
		"def v(x:T1)\nv(X) :- E(X, Y).\nv(Y) :- E(X, Y).",
		"def v(x:T1)",
		"v(X) :- E(X, Y).",
		"def E(x:T1)",
		"def v((",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	base := gen.GraphSchema()
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(base, text)
		if err != nil {
			return
		}
		// Accepted programs validate, round trip, and unfold cleanly.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted invalid program: %v", err)
		}
		p2, err := Parse(base, p.String())
		if err != nil {
			t.Fatalf("rejected own print: %v\n%s", err, p)
		}
		if p.String() != p2.String() {
			t.Fatalf("print not a fixpoint")
		}
		for _, v := range p.Views {
			if _, err := p.Unfold(v.Scheme.Name); err != nil {
				t.Fatalf("unfold of accepted program failed: %v", err)
			}
		}
	})
}
