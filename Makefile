GO ?= go

.PHONY: build test debug race lint fuzz-smoke vet all

all: build vet test lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# debug runs the test suite with the keyedeq_debug build tag, enabling
# the internal/invariant runtime assertions.
debug:
	$(GO) test -tags keyedeq_debug ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/keyedeq-lint ./...

FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/cq -run '^$$' -fuzz '^FuzzParseCQ$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/instance -run '^$$' -fuzz '^FuzzParseInstance$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/schema -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
