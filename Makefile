GO ?= go

.PHONY: build test debug race lint qvet fuzz-smoke vet all

all: build vet test lint qvet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# debug runs the test suite with the keyedeq_debug build tag, enabling
# the internal/invariant runtime assertions.
debug:
	$(GO) test -tags keyedeq_debug ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/keyedeq-lint ./...

# qvet runs the semantic query analyzer over the repo's shipped query,
# program, mapping, and schema inputs (see internal/qvet).
qvet:
	$(GO) run ./cmd/keyedeq-vet -s @examples/vet/company.schema \
		examples/vet/queries.cq examples/vet/views.prog examples/vet/company.schema
	$(GO) run ./cmd/keyedeq-vet -s @examples/vet/company.schema \
		-dst @examples/vet/archive.schema \
		examples/vet/alpha.map examples/vet/archive.schema
	$(GO) run ./cmd/keyedeq-vet -s @internal/qvet/testdata/base.schema \
		-dst @internal/qvet/testdata/dst.schema \
		internal/qvet/testdata/base.schema internal/qvet/testdata/dst.schema \
		$(wildcard internal/qvet/testdata/*/good.*)

FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/cq -run '^$$' -fuzz '^FuzzParseCQ$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/instance -run '^$$' -fuzz '^FuzzParseInstance$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/schema -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/qvet -run '^$$' -fuzz '^FuzzQVet$$' -fuzztime $(FUZZTIME)
