GO ?= go

.PHONY: build test debug race lint lint-json lint-hot qvet fuzz-smoke vet vet-debug bench bench-verify bench-hom bench-hom-verify bench-alloc bench-alloc-verify bench-intern-verify bench-stream-verify obs-verify serve-smoke cover all

all: build vet vet-debug test lint qvet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet-debug repeats the stdlib analyzers with the keyedeq_debug tag so
# the invariant-assertion build stays vet-clean too.
vet-debug:
	$(GO) vet -tags keyedeq_debug ./...

test:
	$(GO) test ./...

# debug runs the test suite with the keyedeq_debug build tag, enabling
# the internal/invariant runtime assertions.
debug:
	$(GO) test -tags keyedeq_debug ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/keyedeq-lint ./...

# lint-json emits the machine-readable report (findings + suppression
# count) that CI turns into PR annotations.
lint-json:
	$(GO) run ./cmd/keyedeq-lint -format=json ./...

# lint-hot runs only the hot-path allocation rules (seeded from
# //keyedeq:hot markers) in the github format, so CI annotates each
# per-iteration allocation inline on the PR.
lint-hot:
	$(GO) run ./cmd/keyedeq-lint -format=github \
		-rules hotalloc,preallocate,iface-box,mapkey,escapes ./...

# qvet runs the semantic query analyzer over the repo's shipped query,
# program, mapping, and schema inputs (see internal/qvet).
qvet:
	$(GO) run ./cmd/keyedeq-vet -s @examples/vet/company.schema \
		examples/vet/queries.cq examples/vet/views.prog examples/vet/company.schema
	$(GO) run ./cmd/keyedeq-vet -s @examples/vet/company.schema \
		-dst @examples/vet/archive.schema \
		examples/vet/alpha.map examples/vet/archive.schema
	$(GO) run ./cmd/keyedeq-vet -s @internal/qvet/testdata/base.schema \
		-dst @internal/qvet/testdata/dst.schema \
		internal/qvet/testdata/base.schema internal/qvet/testdata/dst.schema \
		$(wildcard internal/qvet/testdata/*/good.*)

FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/cq -run '^$$' -fuzz '^FuzzParseCQ$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/instance -run '^$$' -fuzz '^FuzzParseInstance$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/schema -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/qvet -run '^$$' -fuzz '^FuzzQVet$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine -run '^$$' -fuzz '^FuzzCanonicalKey$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analysis -run '^$$' -fuzz '^FuzzAllowDirective$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analysis -run '^$$' -fuzz '^FuzzHotDirective$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cq -run '^$$' -fuzz '^FuzzInternRoundTrip$$' -fuzztime $(FUZZTIME)

# bench writes the batch engine's machine-readable regression record
# (engine-vs-sequential wall time, node counts, cache hit rates).
# bench-verify is the CI gate over it: parse + engine not slower.
bench:
	$(GO) run ./cmd/keyedeq-bench -json BENCH_engine.json

bench-verify:
	$(GO) run ./cmd/keyedeq-bench -verify-bench BENCH_engine.json

# bench-hom writes the adaptive-vs-naive homomorphism search record
# (the planned_* JSON keys name the measured default runtime);
# bench-hom-verify is the CI gate over it: verdict agreement, at least
# 1.5x faster overall, at least 5x fewer nodes on the wide family, and
# no family below 1.0x — the adaptive runtime must never lose to naive.
bench-hom:
	$(GO) run ./cmd/keyedeq-bench -record hom -json BENCH_homsearch.json

bench-hom-verify:
	$(GO) run ./cmd/keyedeq-bench -record hom -verify-bench BENCH_homsearch.json

# bench-alloc rewrites the hot-path allocs/op record (run after an
# intentional allocation-profile change); bench-alloc-verify is the CI
# gate: re-measure in process and require at most 110% of the committed
# record, which itself must sit at or under the pre-fix seed.
bench-alloc:
	$(GO) run ./cmd/keyedeq-bench -record alloc -json BENCH_alloc.json

bench-alloc-verify:
	$(GO) run ./cmd/keyedeq-bench -record alloc -verify-bench BENCH_alloc.json

# bench-intern-verify gates the interned runtime: the differential wall
# (interned vs generic verdicts, witnesses, and chase fingerprints over
# every corpus family) plus the allocation record, whose chase and
# search cases must hold strictly under the pre-interning committed
# records (882 and 258 allocs/op).
bench-intern-verify:
	$(GO) test ./internal/cq -run 'TestInterned|TestCancelObservedInterned' -count=1
	$(GO) test ./internal/containment -run 'TestInterned' -count=1
	$(GO) test ./internal/chase -run 'TestDenseChase|TestCanonicalDatabaseFreeze' -count=1
	$(GO) test ./internal/engine -run 'TestGenericSearch' -count=1
	$(GO) run ./cmd/keyedeq-bench -record alloc -verify-bench BENCH_alloc.json

# bench-stream-verify gates the streamed iterator runtime under the race
# detector: the three-way differential wall (streamed vs both oracles on
# every corpus family, verdicts + stats + witnesses), the in-package
# parity and parallel-component suites, and the cancellation contracts.
bench-stream-verify:
	$(GO) test -race ./internal/cq -run 'TestStreamed|TestScanID|TestAdaptive|TestParallel|TestCancelObservedStreamed|TestCancelObservedAdaptive' -count=1
	$(GO) test -race ./internal/containment -run 'TestStreamedVs|TestAdaptiveVs' -count=1
	$(GO) test -race ./internal/ra -run 'TestStream|TestFromCQPlanned' -count=1

# obs-verify gates the observability layer: the reconciliation smoke
# tests (exported metric totals must equal the summed per-job Stats)
# plus the in-process overhead measurement (metrics collection at most
# 2% over the unobserved path, planned node totals identical to the
# committed H1 record).
obs-verify:
	$(GO) test ./internal/obs -run 'TestBatchMetricsReconcile|TestMetamorphicComponentNodes' -count=1
	$(GO) run ./cmd/keyedeq-bench -verify-obs BENCH_homsearch.json

# serve-smoke gates the daemon end to end: boot with a verdict store,
# decide over HTTP, kill -9, restart on the same store and require the
# verdict back as a warm cache hit; plus the SIGTERM graceful-drain path.
serve-smoke:
	$(GO) test ./cmd/keyedeqd -run 'TestServeSmoke|TestDrainSmoke' -count=1 -v

# cover enforces the decision-path coverage floor (engine, containment,
# chase, the obs layer, the interning/encoding layers, and the relational
# algebra must each stay at or above 75% statement coverage).
COVER_FLOOR ?= 75
COVER_PKGS = ./internal/engine ./internal/containment ./internal/chase ./internal/obs ./internal/value ./internal/instance ./internal/ra

cover:
	@for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{print (p >= f) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "$$pkg: coverage $$pct% below floor $(COVER_FLOOR)%"; exit 1; fi; \
		echo "$$pkg: coverage $$pct% (floor $(COVER_FLOOR)%)"; \
	done
