package keyedeq

// One benchmark per experiment table/figure (DESIGN.md §4).  The
// full-table generators live in internal/exp and are run by
// cmd/keyedeq-bench; these benches time the kernel of each experiment so
// `go test -bench=.` reproduces the per-operation numbers.

import (
	"fmt"
	"math/rand"
	"testing"

	"context"

	"keyedeq/internal/acyclic"
	"keyedeq/internal/capacity"
	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/dominance"
	"keyedeq/internal/engine"
	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/ind"
	"keyedeq/internal/instance"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
	"keyedeq/internal/ucq"
)

// T1 — Theorem 13, exhaustive search vs isomorphism: one full
// equivalence search over a representative pair.
func BenchmarkT1TheoremExhaustive(b *testing.B) {
	s1 := schema.MustParse("r(a*:T1, b:T2)")
	s2 := schema.MustParse("p(x:T2, y*:T1)")
	bounds := dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 2000, MaxPairs: 100_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, _, err := dominance.SearchEquivalence(s1, s2, bounds)
		if err != nil || !ok {
			b.Fatalf("search: %v %v", ok, err)
		}
	}
}

// T2 — Lemmas 1-2: saturate and productize the paper's three-copy query.
func BenchmarkT2SaturationProduct(b *testing.B) {
	q := MustParseQuery("Q(X, Y) :- E(X, Y), E(A, B), E(C, D), X = A, X = C, Y = B.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := ProductUnder(q)
		if err != nil || len(p.Body) != 1 {
			b.Fatalf("product: %v", err)
		}
	}
}

// T3 — containment scaling, one sub-bench per shape and size.
func BenchmarkT3Containment(b *testing.B) {
	gs := gen.GraphSchema()
	shapes := []struct {
		name  string
		build func(int) *Query
		sizes []int
	}{
		{"chain", gen.ChainQuery, []int{4, 8, 12}},
		{"star", gen.StarQuery, []int{4, 8, 12}},
		{"clique", gen.CliqueQuery, []int{3, 4}},
	}
	for _, sh := range shapes {
		for _, n := range sh.sizes {
			q1 := sh.build(n)
			q1.Head = q1.Head[:1]
			q2 := sh.build(n - 1)
			q2.Head = q2.Head[:1]
			b.Run(fmt.Sprintf("%s-%d", sh.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ok, _, err := containment.ContainedUnder(q1, q2, gs, nil)
					if err != nil || !ok {
						b.Fatalf("containment: %v %v", ok, err)
					}
				}
			})
		}
	}
}

// T4 — chase scaling over tableaux of growing size.
func BenchmarkT4Chase(b *testing.B) {
	s := schema.MustParse("R(k*:T1, a:T2, b:T3)")
	deps := fd.KeyFDs(s)
	for _, rows := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows-%d", rows), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tb := chase.NewTableau(s)
				nKeys := rows/3 + 1
				keys := make([]chase.Term, nKeys)
				for j := range keys {
					keys[j] = tb.NewNull(1)
				}
				for j := 0; j < rows; j++ {
					cells := []chase.Term{keys[rng.Intn(nKeys)], tb.NewNull(2), tb.NewNull(3)}
					if err := tb.AddRow("R", cells); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := tb.Run(deps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// T5 — mapping composition plus the symbolic identity decision.
func BenchmarkT5MappingIdentity(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s1 := gen.RandomKeyedSchema(rng, 2, 4, 3)
	s2, iso := schema.RandomIsomorph(s1, rng)
	alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
	if err != nil {
		b.Fatal(err)
	}
	deps := fd.KeyFDs(s1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comp, err := mapping.Compose(beta, alpha)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := comp.IsIdentityOn(deps)
		if err != nil || !ok {
			b.Fatalf("identity: %v %v", ok, err)
		}
	}
}

// T6 — Theorem 9: build and verify one κ-reduction per iteration.
func BenchmarkT6KappaReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s1 := gen.RandomKeyedSchema(rng, 2, 3, 3)
	s2, iso := schema.RandomIsomorph(s1, rng)
	alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aK, bK, err := dominance.KappaReduction(alpha, beta, nil)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := dominance.VerifyKappaPair(aK, bK)
		if err != nil || !ok {
			b.Fatalf("kappa: %v %v", ok, err)
		}
	}
}

// T7 — the two decision procedures side by side.
func BenchmarkT7DecisionCompare(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	s1 := gen.RandomKeyedSchema(rng, 1, 3, 2)
	s2, _ := schema.RandomIsomorph(s1, rng)
	b.Run("canonical-form", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !schema.Isomorphic(s1, s2) {
				b.Fatal("should be isomorphic")
			}
		}
	})
	b.Run("bounded-search", func(b *testing.B) {
		bounds := dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 20000, MaxPairs: 500_000}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, _, err := dominance.SearchEquivalence(s1, s2, bounds)
			if err != nil || !ok {
				b.Fatalf("search: %v %v", ok, err)
			}
		}
	})
}

// T8 — FD closure over random dependency sets.
func BenchmarkT8FDClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	all := fd.Set(0)
	for p := 0; p < 32; p++ {
		all = all.Union(fd.NewSet(p))
	}
	deps := make([]fd.Dep, 64)
	for i := range deps {
		deps[i] = fd.Dep{X: fd.Set(rng.Int63()) & all, Y: fd.Set(rng.Int63()) & all}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fd.Closure(fd.Set(rng.Int63())&all, deps)
	}
}

// F1 — the containment curve's most expensive point (clique-4).
func BenchmarkF1ContainmentCurve(b *testing.B) {
	gs := gen.GraphSchema()
	q1 := gen.CliqueQuery(4)
	q1.Head = q1.Head[:1]
	q2 := gen.CliqueQuery(3)
	q2.Head = q2.Head[:1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, _, err := containment.ContainedUnder(q1, q2, gs, nil)
		if err != nil || !ok {
			b.Fatalf("containment: %v %v", ok, err)
		}
	}
}

// F2 — candidate view enumeration at width 4.
func BenchmarkF2SearchSpace(b *testing.B) {
	r := &schema.Relation{Name: "R", Key: []int{0}}
	for p := 0; p < 4; p++ {
		r.Attrs = append(r.Attrs, schema.Attribute{Name: fmt.Sprintf("a%d", p), Type: 1})
	}
	s := schema.MustNew(r)
	bounds := dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 20000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		views := dominance.EnumerateViews(s, s.Relations[0], bounds)
		if len(views) == 0 {
			b.Fatal("no views")
		}
	}
}

// F3 — chase curve point: 1000 rows, 4 EGDs.
func BenchmarkF3ChaseCurve(b *testing.B) {
	rs := make([]*schema.Relation, 4)
	for i := range rs {
		rs[i] = &schema.Relation{
			Name: fmt.Sprintf("R%d", i),
			Attrs: []schema.Attribute{
				{Name: "k", Type: 1}, {Name: "a", Type: 2}, {Name: "b", Type: 3},
			},
			Key: []int{0},
		}
	}
	s := schema.MustNew(rs...)
	deps := fd.KeyFDs(s)
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := chase.NewTableau(s)
		nKeys := 334
		keys := make([]chase.Term, nKeys)
		for j := range keys {
			keys[j] = tb.NewNull(1)
		}
		for j := 0; j < 1000; j++ {
			rel := rs[rng.Intn(len(rs))]
			if err := tb.AddRow(rel.Name, []chase.Term{
				keys[rng.Intn(nKeys)], tb.NewNull(2), tb.NewNull(3),
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := tb.Run(deps); err != nil {
			b.Fatal(err)
		}
	}
}

// T9 — one full attribute-migration build + symbolic verification.
func BenchmarkT9INDMigration(b *testing.B) {
	c := paperConstrainedBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := c.MoveAttribute("salespeople", 1, "employee", []int{0})
		if err != nil {
			b.Fatal(err)
		}
		ok, err := c.Verify(res)
		if err != nil || !ok {
			b.Fatalf("verify: %v %v", ok, err)
		}
	}
}

func paperConstrainedBench() *ind.Constrained {
	s := schema.MustParse(`
employee(ss*:T1, eName:T2, salary:T3, depId:T4)
department(deptId*:T4, deptName:T5, mgr:T1)
salespeople(ss*:T1, yearsExp:T6)
`)
	return &ind.Constrained{
		S: s,
		INDs: []ind.IND{
			{Left: ind.Ref{Rel: "employee", Pos: []int{3}}, Right: ind.Ref{Rel: "department", Pos: []int{0}}},
			{Left: ind.Ref{Rel: "salespeople", Pos: []int{0}}, Right: ind.Ref{Rel: "employee", Pos: []int{0}}},
			{Left: ind.Ref{Rel: "employee", Pos: []int{0}}, Right: ind.Ref{Rel: "salespeople", Pos: []int{0}}},
		},
	}
}

// T10 — instance counting over finite domains.
func BenchmarkT10Capacity(b *testing.B) {
	s := schema.MustParse("r(k*:T1, a:T2, b:T3)\ns(x*:T2, y:T1)")
	d := capacity.Uniform(16, s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := capacity.CountInstances(s, d); err != nil {
			b.Fatal(err)
		}
	}
}

// T11 — Yannakakis vs plain backtracking on the dead-end workload.
func BenchmarkT11Yannakakis(b *testing.B) {
	d := instance.NewDatabase(gen.GraphSchema())
	v := func(x int64) Value { return Value{Type: 1, N: x} }
	for i := int64(1); i <= 6; i++ {
		d.MustInsert("E", v(i), v(i+1))
	}
	next := int64(1000)
	for i := int64(1); i <= 6; i++ {
		for k := 0; k < 40; k++ {
			d.MustInsert("E", v(i), v(next))
			next++
		}
	}
	q := gen.ChainQuery(6)
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EvalQuery(q, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("yannakakis", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := acyclic.Eval(q, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// T12 — UCQ containment (Sagiv–Yannakakis) over 8-wide unions.
func BenchmarkT12UCQContainment(b *testing.B) {
	u1 := &ucq.Query{}
	u2 := &ucq.Query{}
	for k := 0; k < 8; k++ {
		q1 := gen.ChainQuery(3 + k)
		q1.Head = q1.Head[:1]
		u1.Disjuncts = append(u1.Disjuncts, q1)
		q2 := gen.ChainQuery(2 + k)
		q2.Head = q2.Head[:1]
		u2.Disjuncts = append(u2.Disjuncts, q2)
	}
	gs := gen.GraphSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := ucq.Contained(u1, u2, gs, nil)
		if err != nil || !ok {
			b.Fatalf("ucq containment: %v %v", ok, err)
		}
	}
}

// E1 — batch engine vs sequential equivalence over one generated
// corpus: the sub-benches share the same pair set, so their ns/op are
// directly comparable (the engine side includes canonicalization,
// deduplication, and verdict caching; each iteration uses a fresh
// engine so nothing is amortized across iterations).
func BenchmarkT13EngineBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	fam, err := gen.PairCorpus(rng, "graph-long", 200)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]engine.Job, len(fam.Pairs))
	for i, p := range fam.Pairs {
		jobs[i] = engine.Job{Left: p.Left, Right: p.Right, Op: engine.OpEquivalent}
	}

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range fam.Pairs {
				if _, _, err := containment.EquivalentUnder(p.Left, p.Right, fam.Schema, fam.Deps); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := engine.New(fam.Schema, fam.Deps, engine.Options{CacheSize: 4 * len(jobs)})
			rep := e.Run(context.Background(), jobs)
			if rep.Errors > 0 {
				b.Fatalf("engine errors: %d", rep.Errors)
			}
		}
	})
}
