package keyedeq_test

import (
	"fmt"

	"keyedeq"
)

// The headline operation: Theorem 13's equivalence decision.
func ExampleEquivalent() {
	s1 := keyedeq.MustParseSchema("employee(ss*:T1, name:T2)")
	s2 := keyedeq.MustParseSchema("person(pname:T2, id*:T1)")
	s3 := keyedeq.MustParseSchema("employee(ss*:T1, name:T2, extra:T2)")
	fmt.Println(keyedeq.Equivalent(s1, s2))
	fmt.Println(keyedeq.Equivalent(s1, s3))
	// Output:
	// true
	// false
}

// Witness mappings are constructed from the isomorphism and verified
// symbolically.
func ExampleEquivalentWithWitness() {
	s1 := keyedeq.MustParseSchema("r(a*:T1, b:T2)")
	s2 := keyedeq.MustParseSchema("s(x:T2, y*:T1)")
	w, ok, _ := keyedeq.EquivalentWithWitness(s1, s2)
	fmt.Println(ok)
	fmt.Println(w.Alpha)
	good, _ := keyedeq.VerifyDominance(w.Alpha, w.Beta)
	fmt.Println(good)
	// Output:
	// true
	// s(X1, X0) :- r(X0, X1).
	// true
}

// Conjunctive queries run over database instances.
func ExampleEvalQuery() {
	s := keyedeq.MustParseSchema("E(src:T1, dst:T1)")
	d := keyedeq.NewDatabase(s)
	d.MustInsert("E", keyedeq.Value{Type: 1, N: 1}, keyedeq.Value{Type: 1, N: 2})
	d.MustInsert("E", keyedeq.Value{Type: 1, N: 2}, keyedeq.Value{Type: 1, N: 3})
	q := keyedeq.MustParseQuery("V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.")
	out, _ := keyedeq.EvalQuery(q, d)
	fmt.Println(out)
	// Output:
	// V {(T1:1, T1:3)}
}

// Containment is the Chandra–Merlin homomorphism test; under key
// dependencies the canonical database is chased first.
func ExampleContained() {
	s := keyedeq.MustParseSchema("E(src:T1, dst:T1)")
	twoPath := keyedeq.MustParseQuery("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	edge := keyedeq.MustParseQuery("V(X) :- E(X, Y).")
	ok, _ := keyedeq.Contained(twoPath, edge, s)
	fmt.Println(ok)
	ok, _ = keyedeq.Contained(edge, twoPath, s)
	fmt.Println(ok)
	// Output:
	// true
	// false
}

// Minimization computes the core of a query.
func ExampleMinimizeQuery() {
	s := keyedeq.MustParseSchema("E(src:T1, dst:T1)")
	q := keyedeq.MustParseQuery("Q(X, Y) :- E(X, Y), E(A, B), X = A, Y = B.")
	core, _ := keyedeq.MinimizeQuery(q, s, nil)
	fmt.Println(len(q.Body), "->", len(core.Body))
	// Output:
	// 2 -> 1
}

// Queries render as SQL for interoperability.
func ExampleQueryToSQL() {
	s := keyedeq.MustParseSchema("emp(ss:T1, dep:T2)\ndept(id:T2, name:T3)")
	q := keyedeq.MustParseQuery("V(X, N) :- emp(X, D), dept(D2, N), D = D2.")
	sql, _ := keyedeq.QueryToSQL(q, s)
	fmt.Println(sql)
	// Output:
	// SELECT DISTINCT t0.ss AS c0, t1.name AS c1
	// FROM emp AS t0, dept AS t1
	// WHERE t0.dep = t1.id;
}

// κ(S) projects a keyed schema onto its keys (Theorem 9's construction).
func ExampleKappa() {
	s := keyedeq.MustParseSchema("r(k*:T1, a:T2, k2*:T3)")
	k, _ := keyedeq.Kappa(s)
	fmt.Println(k)
	// Output:
	// r(k:T1, k2:T3)
}
