package keyedeq

import (
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, mirroring the
// paper's running examples.

func TestFacadeTheorem13(t *testing.T) {
	s1 := MustParseSchema("employee(ss*:T1, name:T2)\ndept(id*:T3)")
	s2 := MustParseSchema("d(x*:T3)\ne(nm:T2, k*:T1)")
	if !Equivalent(s1, s2) {
		t.Error("renaming/reordering should be equivalent")
	}
	w, ok, err := EquivalentWithWitness(s1, s2)
	if err != nil || !ok {
		t.Fatalf("witness: %v %v", ok, err)
	}
	good, err := VerifyDominance(w.Alpha, w.Beta)
	if err != nil || !good {
		t.Errorf("witness does not verify: %v %v", good, err)
	}
	s3 := MustParseSchema("employee(ss*:T1, name:T2, extra:T2)\ndept(id*:T3)")
	if Equivalent(s1, s3) {
		t.Error("adding an attribute must break equivalence")
	}
	if !strings.Contains(ExplainEquivalence(s1, s3), "not equivalent") {
		t.Error("Explain should say not equivalent")
	}
}

func TestFacadeQueries(t *testing.T) {
	s := MustParseSchema("E(src:T1, dst:T1)")
	d := NewDatabase(s)
	d.MustInsert("E", Value{Type: 1, N: 1}, Value{Type: 1, N: 2})
	d.MustInsert("E", Value{Type: 1, N: 2}, Value{Type: 1, N: 3})
	q := MustParseQuery("V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.")
	out, err := EvalQuery(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("2-path answers: %s", out)
	}
	// Containment.
	q2 := MustParseQuery("V(X, Y) :- E(X, Y).")
	ok, err := Contained(q2, q2, s)
	if err != nil || !ok {
		t.Error("self containment failed")
	}
	// Minimization.
	q3 := MustParseQuery("V(X, Y) :- E(X, Y), E(A, B), X = A, Y = B.")
	m, err := MinimizeQuery(q3, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Errorf("minimize left %d atoms", len(m.Body))
	}
	eq, err := EquivalentQueries(q3, m, s)
	if err != nil || !eq {
		t.Error("minimized query must stay equivalent")
	}
}

func TestFacadeSaturationPipeline(t *testing.T) {
	q := MustParseQuery("Q(X, Y) :- R(X, Y), R(A, B), X = A.")
	if IJSaturated(q) {
		t.Error("fixture should be unsaturated")
	}
	sat, err := Saturate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !IJSaturated(sat) {
		t.Error("Saturate failed")
	}
	p, err := ToProduct(sat)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Body) != 1 {
		t.Errorf("product has %d atoms", len(p.Body))
	}
	p2, err := ProductUnder(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Body) != 1 {
		t.Errorf("ProductUnder has %d atoms", len(p2.Body))
	}
}

func TestFacadeKappa(t *testing.T) {
	s1 := MustParseSchema("R(k*:T1, a:T2)")
	s2 := MustParseSchema("P(a:T2, k*:T1)")
	iso, ok := FindIsomorphism(s1, s2)
	if !ok {
		t.Fatal("no isomorphism")
	}
	alpha, beta, err := MappingFromIsomorphism(s1, s2, iso)
	if err != nil {
		t.Fatal(err)
	}
	aK, bK, err := KappaReduction(alpha, beta, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := VerifyKappaPair(aK, bK)
	if err != nil || !ok2 {
		t.Errorf("kappa pair: %v %v", ok2, err)
	}
	k, pos := Kappa(s1)
	if k.Relations[0].Arity() != 1 || pos[0][0] != 0 {
		t.Error("Kappa shape wrong")
	}
}

func TestFacadeViewFD(t *testing.T) {
	s := MustParseSchema("R(k*:T1, a:T2)")
	q := MustParseQuery("V(X, Y) :- R(X, Y).")
	ok, err := ViewFDHolds(s, KeyFDs(s), q, []int{0}, []int{1})
	if err != nil || !ok {
		t.Errorf("view FD: %v %v", ok, err)
	}
}

func TestFacadeSearch(t *testing.T) {
	s1 := MustParseSchema("R(a*:T1)")
	s2 := MustParseSchema("P(b*:T1)")
	b := DefaultSearchBounds()
	b.MaxAtoms = 1
	ok, stats, err := SearchEquivalence(s1, s2, b)
	if err != nil || !ok {
		t.Errorf("search: %v %v (%+v)", ok, err, stats)
	}
}

func TestFacadeIdentityMappingCompose(t *testing.T) {
	s := MustParseSchema("R(a*:T1, b:T2)")
	id := IdentityMapping(s)
	comp, err := Compose(id, id)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := comp.IsIdentityOn(KeyFDs(s))
	if err != nil || !ok {
		t.Errorf("id∘id should be id: %v %v", ok, err)
	}
	q := IdentityQuery(s.Relations[0])
	if q.Arity() != 2 {
		t.Error("IdentityQuery arity")
	}
	recs := Receives(q)
	if !recs[0].ReceivesAttr("R", 0) {
		t.Error("Receives on identity query")
	}
}

func TestFacadeKeyFDsAndProjectKappa(t *testing.T) {
	s := MustParseSchema("R(k*:T1, a:T2)")
	fds := KeyFDs(s)
	if len(fds) != 1 {
		t.Fatalf("KeyFDs = %v", fds)
	}
	d := NewDatabase(s)
	d.MustInsert("R", Value{Type: 1, N: 1}, Value{Type: 2, N: 5})
	k, pos := Kappa(s)
	kd := ProjectKappa(d, k, pos)
	if kd.Relations[0].Len() != 1 {
		t.Error("ProjectKappa lost tuples")
	}
}

func TestFacadeUCQ(t *testing.T) {
	s := MustParseSchema("E(src:T1, dst:T1)")
	u1, err := ParseUCQ("V(X) :- E(X, Y).\nV(Y) :- E(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ParseUCQ("V(X) :- E(X, Y), X = Y.")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := UCQContained(u2, u1, s, nil)
	if err != nil || !ok {
		t.Errorf("self-loop ⊑ endpoints: %v %v", ok, err)
	}
	eq, err := UCQEquivalent(u1, u2, s, nil)
	if err != nil || eq {
		t.Errorf("should not be equivalent: %v %v", eq, err)
	}
	d := NewDatabase(s)
	d.MustInsert("E", Value{Type: 1, N: 1}, Value{Type: 1, N: 2})
	out, err := EvalUCQ(u1, d)
	if err != nil || out.Len() != 2 {
		t.Errorf("EvalUCQ: %v %v", out, err)
	}
	m, err := MinimizeUCQ(u1, s, nil)
	if err != nil || len(m.Disjuncts) != 2 {
		t.Errorf("MinimizeUCQ: %v %v", m, err)
	}
}

func TestFacadeBagAndAcyclic(t *testing.T) {
	s := MustParseSchema("E(src:T1, dst:T1)")
	d := NewDatabase(s)
	d.MustInsert("E", Value{Type: 1, N: 1}, Value{Type: 1, N: 2})
	d.MustInsert("E", Value{Type: 1, N: 1}, Value{Type: 1, N: 3})
	q := MustParseQuery("V(X) :- E(X, Y).")
	counts, err := EvalBag(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if counts["(T1:1)"] != 2 {
		t.Errorf("EvalBag = %s", counts)
	}
	q2 := MustParseQuery("V(A) :- E(A, B).")
	if !BagEquivalent(q, q2) {
		t.Error("renamed queries should be bag equivalent")
	}
	if !IsAcyclic(q) {
		t.Error("single atom is acyclic")
	}
	out, stats, err := EvalAcyclic(q, d)
	if err != nil || !stats.Acyclic || out.Len() != 1 {
		t.Errorf("EvalAcyclic: %v %v %+v", out, err, stats)
	}
}

func TestFacadeTheoryAndMappingParse(t *testing.T) {
	s := MustParseSchema("R(a:T1)\nS(b:T1)")
	tgds := []TGD{{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x"}}},
		Head: []TGDAtom{{Rel: "S", Vars: []string{"x"}}},
	}}
	if !WeaklyAcyclic(s, tgds) {
		t.Error("single inclusion should be weakly acyclic")
	}
	q1 := MustParseQuery("V(X) :- R(X).")
	q2 := MustParseQuery("V(X) :- R(X), S(Y), X = Y.")
	ok, _, err := ContainedUnderTheory(q1, q2, s, nil, tgds, 0)
	if err != nil || !ok {
		t.Errorf("theory containment: %v %v", ok, err)
	}
	eq, _, err := EquivalentQueriesUnderTheory(q1, q2, s, nil, tgds, 0)
	if err != nil || !eq {
		t.Errorf("theory equivalence: %v %v", eq, err)
	}
	// ParseMapping + homomorphism witness.
	s1 := MustParseSchema("r(a*:T1)")
	s2 := MustParseSchema("p(x*:T1)")
	m, err := ParseMapping(s1, s2, "p(X) :- r(X).")
	if err != nil {
		t.Fatal(err)
	}
	if m.QueryFor("p") == nil {
		t.Error("ParseMapping lost the view")
	}
	h, ok2, err := FindHomomorphism(q2, q1, s, nil)
	if err != nil || !ok2 {
		t.Fatalf("homomorphism: %v %v", ok2, err)
	}
	if err := VerifyHomomorphism(q2, q1, h, s, nil); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestFacadeMiscCoverage(t *testing.T) {
	s := MustParseSchema("R(k*:T1, a:T2)")
	if CanonicalForm(s) == "" {
		t.Error("empty canonical form")
	}
	q := MustParseQuery("V(X, Y) :- R(X, Y).")
	if _, err := MinimizeQuery(q, s, KeyFDs(s)); err != nil {
		t.Error(err)
	}
	ok, _, err := EquivalentQueriesUnder(q, q, s, KeyFDs(s))
	if err != nil || !ok {
		t.Errorf("self equivalence under keys: %v %v", ok, err)
	}
	p, err := ParseQuery("V(X) :- R(X, Y).")
	if err != nil || p.Arity() != 1 {
		t.Error("ParseQuery")
	}
	var alloc Allocator
	v1 := alloc.Fresh(Type(1))
	if v1.Type != 1 {
		t.Error("Allocator alias broken")
	}
	var choice Choice
	if choice.Of(2).Type != 2 {
		t.Error("Choice alias broken")
	}
}

func TestFacadeProgram(t *testing.T) {
	base := MustParseSchema("E(src:T1, dst:T1)")
	p1, err := ParseProgram(base, "def two(src:T1, dst:T1)\ntwo(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseProgram(base, "def two(src:T1, dst:T1)\ntwo(A, C) :- E(B2, C), E(A, B), B = B2.")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := ProgramEquivalent(p1, "two", p2, "two", nil)
	if err != nil || !eq {
		t.Errorf("programs should be equivalent: %v %v", eq, err)
	}
	d := NewDatabase(base)
	d.MustInsert("E", Value{Type: 1, N: 1}, Value{Type: 1, N: 2})
	d.MustInsert("E", Value{Type: 1, N: 2}, Value{Type: 1, N: 3})
	ext, err := p1.Eval(d)
	if err != nil || ext.Relation("two").Len() != 1 {
		t.Errorf("program eval: %v %v", ext, err)
	}
}
