// Datalog: non-recursive programs (views over views) built on the
// paper's conjunctive query language.  A program materializes stratum by
// stratum, unfolds into a plain union of conjunctive queries over the
// base schema, and program equivalence reduces to UCQ equivalence.
package main

import (
	"fmt"
	"log"

	"keyedeq"
)

func main() {
	base := keyedeq.MustParseSchema("E(src:T1, dst:T1)")

	// A layered reachability program: steps of length 1 or 2, composed.
	p1, err := keyedeq.ParseProgram(base, `
def step(src:T1, dst:T1)
step(X, Y) :- E(X, Y).
step(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.
def reach(src:T1, dst:T1)
reach(X, Z) :- step(X, Y), step(Y2, Z), Y = Y2.
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program:")
	fmt.Print(p1)

	// Evaluate over a path graph 1 -> 2 -> 3 -> 4 -> 5.
	d := keyedeq.NewDatabase(base)
	for i := int64(1); i < 5; i++ {
		d.MustInsert("E",
			keyedeq.Value{Type: 1, N: i},
			keyedeq.Value{Type: 1, N: i + 1})
	}
	ext, err := p1.Eval(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmaterialized strata over the path 1→2→3→4→5:")
	fmt.Println(" ", ext.Relation("step"))
	fmt.Println(" ", ext.Relation("reach"))

	// Unfold: the composed view flattens into a UCQ over E alone.
	u, err := p1.Unfold("reach")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreach unfolds into %d conjunctive queries over E:\n", len(u.Disjuncts))
	for _, q := range u.Disjuncts {
		fmt.Println(" ", q)
	}

	// An equivalent program factored differently: paths of length 2..4
	// written directly.
	p2, err := keyedeq.ParseProgram(base, `
def reach(src:T1, dst:T1)
reach(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.
reach(X, W) :- E(X, A), E(A2, B), E(B2, W), A = A2, B = B2.
reach(X, W) :- E(X, A), E(A2, B), E(B2, C), E(C2, W), A = A2, B = B2, C = C2.
`)
	if err != nil {
		log.Fatal(err)
	}
	eq, err := keyedeq.ProgramEquivalent(p1, "reach", p2, "reach", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfactored (step∘step) ≡ direct (paths 2..4):", eq)

	// Dropping the length-4 disjunct breaks the equivalence.
	p3, err := keyedeq.ParseProgram(base, `
def reach(src:T1, dst:T1)
reach(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.
reach(X, W) :- E(X, A), E(A2, B), E(B2, W), A = A2, B = B2.
`)
	if err != nil {
		log.Fatal(err)
	}
	eq, err = keyedeq.ProgramEquivalent(p1, "reach", p3, "reach", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("without the length-4 paths:", eq)
}
