// Pipeline: one conjunctive query through every formalism the package
// implements — the paper's Datalog-style syntax, the relational algebra
// with equality selections, the algebraic optimizer, SQL rendering, and
// evaluation — with every representation checked to agree.
package main

import (
	"fmt"
	"log"

	"keyedeq"
	"keyedeq/internal/cq"
	"keyedeq/internal/ra"
)

func main() {
	s := keyedeq.MustParseSchema(`
orders(id*:T1, customer:T2, item:T3)
customers(cid*:T2, region:T4)
`)
	q := keyedeq.MustParseQuery(
		"V(O, R) :- orders(O, C, I), customers(C2, R), C = C2, R = T4:7.")
	fmt.Println("query (paper syntax):")
	fmt.Println(" ", q)

	// Compile to conjunctive relational algebra.
	e, err := ra.FromCQ(q, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrelational algebra:")
	fmt.Println(" ", e)

	// Optimize: selections push down, the product becomes a join.
	opt, err := ra.Optimize(e, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized:")
	fmt.Println(" ", opt)
	fmt.Println("  operators:", ra.CountOps(e), "->", ra.CountOps(opt))

	// Extract a conjunctive query back from the optimized plan.
	back, err := ra.ToCQ(opt, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nextracted back to the paper's syntax:")
	fmt.Println(" ", back)
	eq, err := keyedeq.EquivalentQueries(q, back, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  equivalent to the original (Chandra–Merlin):", eq)

	// SQL for interoperability.
	sql, err := keyedeq.QueryToSQL(q, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL:")
	fmt.Println(sql)

	// Evaluate all three representations on a concrete database.
	v := func(t keyedeq.Type, n int64) keyedeq.Value { return keyedeq.Value{Type: t, N: n} }
	d := keyedeq.NewDatabase(s)
	d.MustInsert("orders", v(1, 1), v(2, 10), v(3, 100))
	d.MustInsert("orders", v(1, 2), v(2, 11), v(3, 101))
	d.MustInsert("orders", v(1, 3), v(2, 10), v(3, 102))
	d.MustInsert("customers", v(2, 10), v(4, 7))
	d.MustInsert("customers", v(2, 11), v(4, 8))

	a1, err := cq.Eval(q, d)
	if err != nil {
		log.Fatal(err)
	}
	a2, err := ra.Eval(opt, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanswers (orders by customers in region 7):")
	fmt.Println(" ", a1)
	fmt.Println("  algebra and query agree:", a1.Equal(a2))
}
