// Counterexample hunt: Theorem 13 made executable.  The program
// exhaustively enumerates a space of small keyed schemas and, for every
// non-isomorphic pair, searches for conjunctive query mappings (α, β)
// that would establish equivalence anyway.  Theorem 13 proves the hunt
// must come up empty — and it does.
package main

import (
	"fmt"

	"keyedeq"
	"keyedeq/internal/dominance"
	"keyedeq/internal/gen"
)

func main() {
	space := gen.SchemaSpace{MaxRelations: 1, MaxAttrs: 2, Types: 2, AllKeySubsets: true}
	schemas := gen.EnumerateKeyedSchemas(space)
	fmt.Printf("enumerated %d keyed schemas (≤%d relations, ≤%d attrs, %d types)\n\n",
		len(schemas), space.MaxRelations, space.MaxAttrs, space.Types)

	bounds := dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 5000, MaxPairs: 200_000}
	var pairs, isoPairs, equivFound, counterexamples, truncated int
	for i, s1 := range schemas {
		for j := i + 1; j < len(schemas); j++ {
			s2 := schemas[j]
			pairs++
			iso := keyedeq.Isomorphic(s1, s2)
			if iso {
				isoPairs++
			}
			eq, stats, err := keyedeq.SearchEquivalence(s1, s2, bounds)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if stats.Truncated {
				truncated++
			}
			if eq {
				equivFound++
			}
			if eq && !iso {
				counterexamples++
				fmt.Printf("COUNTEREXAMPLE?!\n%s\nvs\n%s\n\n", s1, s2)
			}
		}
	}
	fmt.Printf("pairs examined:        %d\n", pairs)
	fmt.Printf("isomorphic pairs:      %d\n", isoPairs)
	fmt.Printf("equivalences found:    %d (all of them isomorphic pairs)\n", equivFound)
	fmt.Printf("truncated searches:    %d\n", truncated)
	fmt.Printf("counterexamples:       %d\n", counterexamples)
	if counterexamples == 0 {
		fmt.Println("\nTheorem 13 stands: keyed schemas are conjunctive query")
		fmt.Println("equivalent only when identical up to renaming and re-ordering.")
	}
}
