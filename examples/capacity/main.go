// Capacity: why the paper rejects bijection-based schema equivalence.
//
// One proposed notion of equivalence (discussed and dismissed in the
// paper's introduction) considers schemas equivalent when a bijection
// exists between their instance sets — i.e. when they admit equally many
// instances.  This program counts instances exactly over finite domains
// and exhibits keyed schemas with identical counts at EVERY domain size
// that are nevertheless not conjunctive query equivalent: counting
// cannot see attribute types, queries can.
package main

import (
	"fmt"
	"log"

	"keyedeq"
	"keyedeq/internal/capacity"
)

func main() {
	pairs := []struct {
		name   string
		s1, s2 string
	}{
		{"type-swapped keys", "r(a*:T1)", "r(a*:T2)"},
		{"isomorphic", "r(a*:T1, b:T2)", "s(x:T2, y*:T1)"},
		{"extra attribute", "r(a*:T1)", "r(a*:T1, b:T1)"},
		{"key widened", "r(a*:T1, b:T1)", "r(a*:T1, b*:T1)"},
	}
	fmt.Println("instance counts over uniform finite domains (exact):")
	fmt.Println()
	for _, p := range pairs {
		s1 := keyedeq.MustParseSchema(p.s1)
		s2 := keyedeq.MustParseSchema(p.s2)
		fmt.Printf("%s:\n  %-24s vs  %s\n", p.name, p.s1, p.s2)
		for n := 1; n <= 4; n++ {
			d := capacity.Uniform(n, s1, s2)
			c1, err := capacity.CountInstances(s1, d)
			if err != nil {
				log.Fatal(err)
			}
			c2, err := capacity.CountInstances(s2, d)
			if err != nil {
				log.Fatal(err)
			}
			marker := "≠"
			if c1.Cmp(c2) == 0 {
				marker = "="
			}
			fmt.Printf("  domain %d: %12s %s %-12s\n", n, c1, marker, c2)
		}
		fmt.Printf("  conjunctive query equivalent (Theorem 13): %v\n\n",
			keyedeq.Equivalent(s1, s2))
	}
	fmt.Println("the 'type-swapped keys' pair has equal counts at every size, yet")
	fmt.Println("no pair of conjunctive mappings round-trips between them: counting")
	fmt.Println("instances is blind to exactly the structure queries must preserve.")
}
