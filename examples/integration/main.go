// Integration: the paper's §1 motivating example, executed.
//
// Schema 1 stores a salesperson's yearsExp in a separate relation, which
// blocks integrating its employee relation with Schema 2's empl relation.
// Under keys alone the schemas admit no non-trivial transformation
// (Theorem 13) — but Schema 1 also declares the inclusion dependencies
// salespeople[ss] ⊆ employee[ss] and employee[ss] ⊆ salespeople[ss], and
// with referential integrity available the attribute can be migrated,
// producing Schema 1' whose employee relation lines up with empl.
package main

import (
	"fmt"
	"log"

	"keyedeq"
	"keyedeq/internal/ind"
)

func main() {
	// Schema 1, exactly as in the paper (T1=ssn, T2=name, T3=salary,
	// T4=dept id, T5=dept name, T6=years of experience).
	schema1 := keyedeq.MustParseSchema(`
employee(ss*:T1, eName:T2, salary:T3, depId:T4)
department(deptId*:T4, deptName:T5, mgr:T1)
salespeople(ss*:T1, yearsExp:T6)
`)
	constrained := &ind.Constrained{
		S: schema1,
		INDs: []ind.IND{
			{Left: ind.Ref{Rel: "employee", Pos: []int{3}}, Right: ind.Ref{Rel: "department", Pos: []int{0}}},
			{Left: ind.Ref{Rel: "salespeople", Pos: []int{0}}, Right: ind.Ref{Rel: "employee", Pos: []int{0}}},
			{Left: ind.Ref{Rel: "employee", Pos: []int{0}}, Right: ind.Ref{Rel: "salespeople", Pos: []int{0}}},
		},
	}
	if err := constrained.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Schema 1:")
	fmt.Println(schema1)
	for _, d := range constrained.INDs {
		fmt.Println(" ", d)
	}

	// Schema 2 (for comparison; its empl relation carries yrsExp inline).
	schema2 := keyedeq.MustParseSchema(`
empl(ssn*:T1, ename:T2, sal:T3, dep:T4, yrsExp:T6)
dept(departId*:T4, dName:T5, manager:T1)
`)
	fmt.Println("\nSchema 2:")
	fmt.Println(schema2)

	// Keys alone: no transformation exists (Theorem 13).
	fmt.Println("\nSchema 1 ≡ Schema 2 under keys alone?",
		keyedeq.Equivalent(schema1, schema2))

	// With the bidirectional inclusion between salespeople[ss] and
	// employee[ss], yearsExp migrates into employee.
	res, err := constrained.MoveAttribute("salespeople", 1, "employee", []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSchema 1' (after migrating yearsExp):")
	fmt.Println(res.New.S)
	for _, d := range res.New.INDs {
		fmt.Println(" ", d)
	}

	fmt.Println("\nwitness α (Schema 1 → Schema 1'):")
	fmt.Println(res.Alpha)
	fmt.Println("\nwitness β (Schema 1' → Schema 1):")
	fmt.Println(res.Beta)

	// The transformation is PROVED equivalence preserving: β∘α = id is
	// decided symbolically by the chase with the key EGDs and the
	// inclusion dependencies as TGDs (the constraint set is weakly
	// acyclic, so the chase terminates).
	fmt.Println("\nconstraints weakly acyclic (chase terminates):", constrained.WeaklyAcyclic())
	proved, err := constrained.Verify(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("symbolically verified equivalence preserving:", proved)

	// A concrete database of Schema 1.
	v := func(t keyedeq.Type, n int64) keyedeq.Value { return keyedeq.Value{Type: t, N: n} }
	db := keyedeq.NewDatabase(schema1)
	db.MustInsert("department", v(4, 10), v(5, 1), v(1, 101))
	db.MustInsert("department", v(4, 20), v(5, 2), v(1, 102))
	db.MustInsert("employee", v(1, 101), v(2, 11), v(3, 90), v(4, 10))
	db.MustInsert("employee", v(1, 102), v(2, 12), v(3, 95), v(4, 20))
	db.MustInsert("employee", v(1, 103), v(2, 13), v(3, 70), v(4, 10))
	db.MustInsert("salespeople", v(1, 101), v(6, 5))
	db.MustInsert("salespeople", v(1, 102), v(6, 12))
	db.MustInsert("salespeople", v(1, 103), v(6, 2))
	if !constrained.Satisfied(db) {
		log.Fatal("database violates Schema 1's dependencies")
	}
	fmt.Println("\ndatabase (Schema 1):")
	fmt.Println(db)

	mid, err := res.Alpha.Apply(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nα(db) — the Schema 1' view, ready to integrate with empl:")
	fmt.Println(mid)
	fmt.Println("\nα(db) satisfies Schema 1' dependencies:", res.New.Satisfied(mid))

	back, err := res.Beta.Apply(mid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("β(α(db)) = db:", back.Equal(db))

	// Now the transformed employee relation and Schema 2's empl relation
	// are identical up to renaming: the integration obstacle is gone.
	merged1 := keyedeq.MustParseSchema(`
employee(ss*:T1, eName:T2, salary:T3, depId:T4, yearsExp:T6)
department(deptId*:T4, deptName:T5, mgr:T1)
`)
	fmt.Println("\nemployee'/department' vs empl/dept equivalent?",
		keyedeq.Equivalent(merged1, schema2))
}
