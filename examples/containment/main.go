// Containment: conjunctive query containment, equivalence, minimization,
// ij-saturation and the receives analysis — the paper's §2 machinery on
// its own worked examples.
package main

import (
	"fmt"
	"log"

	"keyedeq"
)

func main() {
	gs := keyedeq.MustParseSchema("E(src:T1, dst:T1)")

	// Classical containment: "has an outgoing 2-path" ⊑ "has an
	// outgoing edge", but not conversely.
	twoPath := keyedeq.MustParseQuery("V(X) :- E(X, Y), E(Y2, Z), Y = Y2.")
	edge := keyedeq.MustParseQuery("V(X) :- E(X, Y).")
	c1, err := keyedeq.Contained(twoPath, edge, gs)
	show("2-path ⊑ edge", c1, err)
	c2, err := keyedeq.Contained(edge, twoPath, gs)
	show("edge ⊑ 2-path", c2, err)

	// The paper's ij-saturation example: three copies of R fully merged.
	sat := keyedeq.MustParseQuery(
		"Q(X, Y) :- E(X, Y), E(A, B), E(C, D), X = A, X = C, Y = B, Y = D.")
	fmt.Println("\nij-saturated:", keyedeq.IJSaturated(sat))
	prod, err := keyedeq.ToProduct(sat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lemma 1 product query:", prod)
	eq, err := keyedeq.EquivalentQueries(sat, prod, gs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent to the original:", eq)

	// The unsaturated variant from the paper (Y = D, B = D missing) is
	// not saturated; Saturate completes it.
	unsat := keyedeq.MustParseQuery(
		"Q(X, Y) :- E(X, Y), E(A, B), E(C, D), X = A, X = C, A = C, Y = B.")
	fmt.Println("\npaper's unsaturated example saturated?", keyedeq.IJSaturated(unsat))
	completed, err := keyedeq.Saturate(unsat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after Saturate:", keyedeq.IJSaturated(completed))

	// Minimization: the saturated query's core is a single atom.
	core, err := keyedeq.MinimizeQuery(sat, gs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncore of the saturated query (%d -> %d atoms): %s\n",
		len(sat.Body), len(core.Body), core)

	// Containment under key dependencies: the chase enables containments
	// that fail without them.
	ks := keyedeq.MustParseSchema("R(k*:T1, a:T1)")
	deps := keyedeq.KeyFDs(ks)
	q1 := keyedeq.MustParseQuery("V(K, A, B) :- R(K, A), R(K2, B), K = K2.")
	q2 := keyedeq.MustParseQuery("V(K, A, A) :- R(K, A).")
	plain, err := keyedeq.Contained(q1, q2, ks)
	if err != nil {
		log.Fatal(err)
	}
	under, _, err := keyedeq.ContainedUnder(q1, q2, ks, deps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared-key join ⊑ single atom: without keys %v, under keys %v\n",
		plain, under)

	// The receives analysis on the paper's own example:
	// R(X,Y,Z) :- P(X,Y), Q(T,Z), Y = T.
	_ = keyedeq.MustParseSchema("P(a:T1, b:T2)\nQv(c:T2, d:T3)")
	q := keyedeq.MustParseQuery("R(X, Y, Z) :- P(X, Y), Qv(T, Z), Y = T.")
	fmt.Println("\nreceives analysis of", q)
	for i, rec := range keyedeq.Receives(q) {
		fmt.Printf("  head %d receives: %v", i, rec.Attrs)
		if rec.HasConst {
			fmt.Printf(" and constant %s", rec.Const)
		}
		fmt.Println()
	}
}

func show(name string, ok bool, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %v\n", name, ok)
}
