// Quickstart: decide schema equivalence, inspect the witness mappings,
// and run a conjunctive query — the three core operations of keyedeq.
package main

import (
	"fmt"
	"log"

	"keyedeq"
)

func main() {
	// Two keyed schemas that differ only by renaming and re-ordering.
	s1 := keyedeq.MustParseSchema(`
employee(ss*:T1, name:T2, dept:T3)
department(id*:T3, head:T1)
`)
	s2 := keyedeq.MustParseSchema(`
abteilung(leiter:T1, nr*:T3)
person(abt:T3, pname:T2, svn*:T1)
`)

	// Theorem 13: conjunctive query equivalence ⟺ identical up to
	// renaming and re-ordering.  The test is a canonical-form comparison.
	fmt.Println("equivalent:", keyedeq.Equivalent(s1, s2))

	// The equivalence comes with certificate mappings: conjunctive
	// queries translating instances both ways, with β∘α = id.
	w, ok, err := keyedeq.EquivalentWithWitness(s1, s2)
	if err != nil || !ok {
		log.Fatalf("no witness: %v %v", ok, err)
	}
	fmt.Println("\nα (schema 1 → schema 2):")
	fmt.Println(w.Alpha)
	fmt.Println("\nβ (schema 2 → schema 1):")
	fmt.Println(w.Beta)

	verified, err := keyedeq.VerifyDominance(w.Alpha, w.Beta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsymbolically verified (valid + β∘α = id):", verified)

	// A small instance, translated and translated back.
	d := keyedeq.NewDatabase(s1)
	d.MustInsert("employee",
		keyedeq.Value{Type: 1, N: 1001},
		keyedeq.Value{Type: 2, N: 7},
		keyedeq.Value{Type: 3, N: 42})
	d.MustInsert("department",
		keyedeq.Value{Type: 3, N: 42},
		keyedeq.Value{Type: 1, N: 1001})

	mid, err := w.Alpha.Apply(d)
	if err != nil {
		log.Fatal(err)
	}
	back, err := w.Beta.Apply(mid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninstance of schema 1:")
	fmt.Println(d)
	fmt.Println("\ntranslated to schema 2:")
	fmt.Println(mid)
	fmt.Println("\nround trip equals original:", back.Equal(d))

	// Conjunctive queries in the paper's syntax run directly.
	q := keyedeq.MustParseQuery(
		"V(Name, Head) :- employee(S, Name, D), department(D2, Head), D = D2.")
	out, err := keyedeq.EvalQuery(q, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nemployees with their department heads:")
	fmt.Println(out)

	// A schema that stores an extra attribute is NOT equivalent — the
	// paper's negative result: keys alone admit no non-trivial
	// transformations.
	s3 := keyedeq.MustParseSchema(`
employee(ss*:T1, name:T2, dept:T3, bonus:T2)
department(id*:T3, head:T1)
`)
	fmt.Println("\nwith an extra attribute:", keyedeq.ExplainEquivalence(s1, s3))
}
