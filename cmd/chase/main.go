// Command chase runs the key-dependency chase over a conjunctive query's
// canonical database and reports what the dependencies force: derived
// variable equalities, failure (unsatisfiability), and the chased
// canonical instance.  It can also run the two-copy view-FD test.
//
// Usage:
//
//	chase -s "R(k*:T1, a:T2)" -q "V(K, A, B) :- R(K, A), R(K2, B), K = K2."
//	chase -s "R(k*:T1, a:T2)" -q "V(X, Y) :- R(X, Y)." -fd "0->1"
//
// Exit status: 0 success, 1 failing chase / FD does not hold, 2 input
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"keyedeq"
	"keyedeq/internal/chase"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chase", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaText := fs.String("s", "", "schema (inline)")
	queryText := fs.String("q", "", "conjunctive query")
	fdSpec := fs.String("fd", "", "view FD to test, e.g. \"0,1->2\" over head positions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "chase:", err)
		return 2
	}
	if *schemaText == "" || *queryText == "" {
		return fail(fmt.Errorf("need -s and -q; see -h"))
	}
	s, err := schema.Parse(*schemaText)
	if err != nil {
		return fail(err)
	}
	q, err := cq.Parse(*queryText)
	if err != nil {
		return fail(err)
	}
	if err := q.Validate(s); err != nil {
		return fail(err)
	}
	deps := fd.KeyFDs(s)
	fmt.Fprintf(stdout, "schema:\n%s\nquery: %s\nkey dependencies: %d\n\n", s, q, len(deps))

	if *fdSpec != "" {
		x, y, err := parseFDSpec(*fdSpec)
		if err != nil {
			return fail(err)
		}
		holds, err := keyedeq.ViewFDHolds(s, deps, q, x, y)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "view FD %v -> %v on q(d) for all key-satisfying d: %v\n", x, y, holds)
		if !holds {
			return 1
		}
		return 0
	}

	tb := chase.NewTableau(s)
	vars, err := chase.Freeze(tb, q)
	if err != nil {
		return fail(err)
	}
	stats, err := tb.Run(deps)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "chase: %d iterations, %d merges\n", stats.Iterations, stats.Merges)
	if tb.Failed() {
		fmt.Fprintln(stdout, "chase FAILED: the query is empty on every key-satisfying instance")
		return 1
	}
	// Report derived equalities among the query's variables.
	seen := map[string]bool{}
	eqc := cq.NewEqClasses(q)
	derived := 0
	for _, v1 := range q.BodyVars() {
		for _, v2 := range q.BodyVars() {
			if v1 >= v2 || seen[string(v1)+"="+string(v2)] {
				continue
			}
			seen[string(v1)+"="+string(v2)] = true
			if tb.Same(vars[v1], vars[v2]) && !eqc.Same(v1, v2) {
				fmt.Fprintf(stdout, "derived: %s = %s\n", v1, v2)
				derived++
			}
		}
	}
	if derived == 0 {
		fmt.Fprintln(stdout, "no new equalities derived")
	}
	var alloc value.Allocator
	db, _, err := tb.ToDatabase(&alloc)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "\nchased canonical database:\n%s\n", db)
	return 0
}

// parseFDSpec parses "0,1->2,3".
func parseFDSpec(spec string) (x, y []int, err error) {
	parts := strings.SplitN(spec, "->", 2)
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("chase: FD spec %q must look like \"0,1->2\"", spec)
	}
	parse := func(s string) ([]int, error) {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, nil
		}
		var out []int
		for _, tok := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return nil, fmt.Errorf("chase: bad position %q", tok)
			}
			out = append(out, n)
		}
		return out, nil
	}
	if x, err = parse(parts[0]); err != nil {
		return nil, nil, err
	}
	if y, err = parse(parts[1]); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}
