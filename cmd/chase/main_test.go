package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestChaseDerivesEquality(t *testing.T) {
	code, out := runCLI(t,
		"-s", "R(k*:T1, a:T2)",
		"-q", "V(K, A, B) :- R(K, A), R(K2, B), K = K2.")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	if !strings.Contains(out, "derived: A = B") {
		t.Errorf("missing derived equality:\n%s", out)
	}
	if !strings.Contains(out, "chased canonical database") {
		t.Errorf("missing database dump:\n%s", out)
	}
}

func TestChaseNoDerivation(t *testing.T) {
	code, out := runCLI(t, "-s", "R(k*:T1, a:T2)", "-q", "V(K, A) :- R(K, A).")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "no new equalities derived") {
		t.Errorf("output:\n%s", out)
	}
}

func TestChaseFailureExitCode(t *testing.T) {
	code, out := runCLI(t,
		"-s", "R(k*:T1, a:T1)",
		"-q", "V(K) :- R(K, A), R(K2, B), K = K2, A = T1:1, B = T1:2.")
	if code != 1 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	if !strings.Contains(out, "chase FAILED") {
		t.Errorf("output:\n%s", out)
	}
}

func TestViewFDMode(t *testing.T) {
	code, out := runCLI(t,
		"-s", "R(k*:T1, a:T2)",
		"-q", "V(X, Y) :- R(X, Y).",
		"-fd", "0->1")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	if !strings.Contains(out, "true") {
		t.Errorf("output:\n%s", out)
	}
	// Failing FD: exit 1.
	code, _ = runCLI(t,
		"-s", "R(k*:T1, a:T2)",
		"-q", "V(X, Y) :- R(X, Y).",
		"-fd", "1->0")
	if code != 1 {
		t.Fatalf("failing FD exit = %d", code)
	}
}

func TestChaseErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-s", "R(k*:T1)"},
		{"-s", "bogus((", "-q", "V(X) :- R(X)."},
		{"-s", "R(k*:T1)", "-q", "broken"},
		{"-s", "R(k*:T1)", "-q", "V(X) :- Z(X)."},
		{"-s", "R(k*:T1)", "-q", "V(X) :- R(X).", "-fd", "nonsense"},
		{"-s", "R(k*:T1)", "-q", "V(X) :- R(X).", "-fd", "0->9"},
		{"-s", "R(k*:T1)", "-q", "V(X) :- R(X).", "-fd", "x->0"},
	}
	for i, args := range cases {
		if code, _ := runCLI(t, args...); code != 2 {
			t.Errorf("case %d: exit = %d, want 2", i, code)
		}
	}
}
