// Command cqcheck decides conjunctive query containment, equivalence and
// minimization, optionally under key dependencies (via the chase), and
// can evaluate queries against database files and print containment
// certificates and SQL.
//
// Usage:
//
//	cqcheck -s "E(src:T1, dst:T1)" \
//	        -q1 "V(X) :- E(X, Y), E(Y2, Z), Y = Y2." \
//	        -q2 "V(X) :- E(X, Y)." [-keys] [-minimize] [-witness]
//	cqcheck -s @schema.txt -q1 "..." -d data.txt     # evaluate q1
//	cqcheck -s "..." -q1 "..." -sql                  # render q1 as SQL
//
// The -s argument is inline text or @file; -d names a database file in
// the "relation(T1:1, T2:5)" line format.
//
// Exit status: 0 on success, 2 on input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"keyedeq"
	"keyedeq/internal/cli"
	"keyedeq/internal/instance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cqcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaText := fs.String("s", "", "schema (inline text or @file)")
	q1Text := fs.String("q1", "", "first query")
	q2Text := fs.String("q2", "", "second query (optional)")
	useKeys := fs.Bool("keys", false, "reason under the schema's key dependencies")
	minimize := fs.Bool("minimize", false, "print a minimal core of -q1")
	witness := fs.Bool("witness", false, "print the homomorphism certificates")
	sql := fs.Bool("sql", false, "render -q1 as SQL")
	dataFile := fs.String("d", "", "database file to evaluate -q1 over")
	var sf cli.SearchFlags
	sf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := sf.Apply(); err != nil {
		fmt.Fprintf(stderr, "cqcheck: %v\n", err)
		return 2
	}

	fail := cli.Fail(stderr, "cqcheck")
	if *schemaText == "" || *q1Text == "" {
		return fail(fmt.Errorf("need -s and -q1; see -h"))
	}
	s, err := cli.Schema(*schemaText)
	if err != nil {
		return fail(err)
	}
	q1, err := keyedeq.ParseQuery(*q1Text)
	if err != nil {
		return fail(fmt.Errorf("q1: %v", err))
	}
	if err := q1.Validate(s); err != nil {
		return fail(err)
	}
	var deps []keyedeq.FD
	if *useKeys {
		deps = keyedeq.KeyFDs(s)
		fmt.Fprintf(stdout, "reasoning under %d key dependencies\n", len(deps))
	}

	did := false
	if *q2Text != "" {
		did = true
		q2, err := keyedeq.ParseQuery(*q2Text)
		if err != nil {
			return fail(fmt.Errorf("q2: %v", err))
		}
		c12, st12, err := keyedeq.ContainedUnder(q1, q2, s, deps)
		if err != nil {
			return fail(err)
		}
		c21, st21, err := keyedeq.ContainedUnder(q2, q1, s, deps)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "q1 ⊑ q2: %v (search nodes %d)\n", c12, st12.Nodes)
		fmt.Fprintf(stdout, "q2 ⊑ q1: %v (search nodes %d)\n", c21, st21.Nodes)
		fmt.Fprintf(stdout, "equivalent: %v\n", c12 && c21)
		if *witness {
			if h, ok, err := keyedeq.FindHomomorphism(q1, q2, s, deps); err == nil && ok && h != nil {
				fmt.Fprintf(stdout, "certificate q1 ⊑ q2 (q2 vars → q1 terms): %s\n", h)
			}
			if h, ok, err := keyedeq.FindHomomorphism(q2, q1, s, deps); err == nil && ok && h != nil {
				fmt.Fprintf(stdout, "certificate q2 ⊑ q1 (q1 vars → q2 terms): %s\n", h)
			}
		}
	}

	if *minimize {
		did = true
		core, err := keyedeq.MinimizeQuery(q1, s, deps)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "core of q1 (%d of %d atoms):\n%s\n", len(core.Body), len(q1.Body), core)
	}

	if *sql {
		did = true
		out, err := keyedeq.QueryToSQL(q1, s)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, out)
	}

	if *dataFile != "" {
		did = true
		data, err := os.ReadFile(*dataFile)
		if err != nil {
			return fail(err)
		}
		db, err := instance.Parse(s, string(data))
		if err != nil {
			return fail(err)
		}
		ans, err := keyedeq.EvalQuery(q1, db)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "q1 over %s (%d tuples): %s\n", *dataFile, db.Size(), ans)
	}

	if !did {
		fmt.Fprintln(stdout, "q1 is well-formed:", q1)
	}
	return 0
}
