package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestContainmentOutput(t *testing.T) {
	code, out := runCLI(t,
		"-s", "E(src:T1, dst:T1)",
		"-q1", "V(X) :- E(X, Y), E(Y2, Z), Y = Y2.",
		"-q2", "V(X) :- E(X, Y).")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	for _, want := range []string{"q1 ⊑ q2: true", "q2 ⊑ q1: false", "equivalent: false"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestWitnessFlag(t *testing.T) {
	code, out := runCLI(t,
		"-s", "E(src:T1, dst:T1)",
		"-q1", "V(X) :- E(X, Y), E(Y2, Z), Y = Y2.",
		"-q2", "V(X) :- E(X, Y).",
		"-witness")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "certificate q1 ⊑ q2") {
		t.Errorf("missing certificate:\n%s", out)
	}
}

func TestMinimizeFlag(t *testing.T) {
	code, out := runCLI(t,
		"-s", "E(src:T1, dst:T1)",
		"-q1", "Q(X, Y) :- E(X, Y), E(A, B), X = A, Y = B.",
		"-minimize")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "core of q1 (1 of 2 atoms)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestKeysFlag(t *testing.T) {
	code, out := runCLI(t,
		"-s", "R(k*:T1, a:T1)",
		"-q1", "V(K, A, B) :- R(K, A), R(K2, B), K = K2.",
		"-q2", "V(K, A, A) :- R(K, A).",
		"-keys")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "equivalent: true") {
		t.Errorf("key reasoning failed:\n%s", out)
	}
}

func TestSQLFlag(t *testing.T) {
	code, out := runCLI(t,
		"-s", "E(src:T1, dst:T1)",
		"-q1", "V(X) :- E(X, Y).",
		"-sql")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "SELECT DISTINCT") {
		t.Errorf("output:\n%s", out)
	}
}

func TestDataFileEvaluation(t *testing.T) {
	dir := t.TempDir()
	df := filepath.Join(dir, "data.txt")
	os.WriteFile(df, []byte("E(T1:1, T1:2)\nE(T1:2, T1:3)\n"), 0o644)
	code, out := runCLI(t,
		"-s", "E(src:T1, dst:T1)",
		"-q1", "V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.",
		"-d", df)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	if !strings.Contains(out, "(T1:1, T1:3)") {
		t.Errorf("expected the 2-path answer:\n%s", out)
	}
}

func TestSchemaFromFile(t *testing.T) {
	dir := t.TempDir()
	sf := filepath.Join(dir, "schema.txt")
	os.WriteFile(sf, []byte("E(src:T1, dst:T1)\n"), 0o644)
	code, out := runCLI(t, "-s", "@"+sf, "-q1", "V(X) :- E(X, Y).")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	if !strings.Contains(out, "well-formed") {
		t.Errorf("output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-s", "E(src:T1, dst:T1)"},
		{"-s", "bogus((", "-q1", "V(X) :- E(X, Y)."},
		{"-s", "E(src:T1, dst:T1)", "-q1", "broken"},
		{"-s", "E(src:T1, dst:T1)", "-q1", "V(X) :- Z(X)."},
		{"-s", "@/nonexistent", "-q1", "V(X) :- E(X, Y)."},
		{"-s", "E(src:T1, dst:T1)", "-q1", "V(X) :- E(X, Y).", "-q2", "broken"},
		{"-s", "E(src:T1, dst:T1)", "-q1", "V(X) :- E(X, Y).", "-d", "/nonexistent"},
	}
	for i, args := range cases {
		if code, _ := runCLI(t, args...); code != 2 {
			t.Errorf("case %d: exit = %d, want 2", i, code)
		}
	}
}
