// Command keyedeq-lint runs the repo's static analyzer over the module
// and reports violations of its determinism and error-discipline
// invariants (see internal/analysis for the rule catalogue).
//
// Usage:
//
//	keyedeq-lint [-rules detmap,norand,...] [packages]
//
// The package arguments are accepted for familiarity ("./..." is the
// conventional spelling) but the analyzer always loads the whole module
// containing the working directory: the rules are module-global
// invariants, not per-package style checks.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// load or usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"keyedeq/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("keyedeq-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ruleNames := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	rootFlag := fs.String("C", "", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "keyedeq-lint:", err)
		return 2
	}

	start := *rootFlag
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			return fail(err)
		}
		start = wd
	}
	root, err := findModuleRoot(start)
	if err != nil {
		return fail(err)
	}

	rules, err := selectRules(*ruleNames)
	if err != nil {
		return fail(err)
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return fail(err)
	}
	diags := analysis.Run(pkgs, rules)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "keyedeq-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectRules resolves a comma-separated rule list against the
// catalogue; empty means all rules.
func selectRules(names string) ([]analysis.Rule, error) {
	all := analysis.AllRules()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]analysis.Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []analysis.Rule
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: detmap, norand, nowallclock, panicgate, errdrop)", name)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return out, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
