// Command keyedeq-lint runs the repo's static analyzer over the module
// and reports violations of its determinism, error-discipline,
// concurrency, and hot-path allocation invariants (see internal/analysis
// for the rule catalogue; the allocation rules — hotalloc, preallocate,
// iface-box, mapkey, escapes — run over functions marked with
// //keyedeq:hot and everything they call in-package).
//
// Usage:
//
//	keyedeq-lint [-rules detmap,norand,...] [-format text|json|sarif|github] [packages]
//
// The package arguments are accepted for familiarity ("./..." is the
// conventional spelling) but the analyzer always loads the whole module
// containing the working directory: the rules are module-global
// invariants, not per-package style checks.
//
// Output formats:
//
//	text    one finding per line plus a summary footer (default)
//	json    a single object {"findings": [...], "suppressed": N}
//	sarif   SARIF 2.1.0, for code-scanning upload
//	github  GitHub Actions workflow commands (::error annotations)
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"keyedeq/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("keyedeq-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ruleNames := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	rootFlag := fs.String("C", "", "run as if started in this directory")
	format := fs.String("format", "text", "output format: text, json, sarif, or github")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "keyedeq-lint:", err)
		return 2
	}

	emit, ok := formats[*format]
	if !ok {
		return fail(fmt.Errorf("unknown format %q (have: text, json, sarif, github)", *format))
	}

	start := *rootFlag
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			return fail(err)
		}
		start = wd
	}
	root, err := findModuleRoot(start)
	if err != nil {
		return fail(err)
	}

	rules, err := selectRules(*ruleNames)
	if err != nil {
		return fail(err)
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return fail(err)
	}
	sum := analysis.RunSummary(pkgs, rules)
	for i := range sum.Diagnostics {
		relativize(root, &sum.Diagnostics[i])
	}
	if err := emit(stdout, sum); err != nil {
		return fail(err)
	}
	if len(sum.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// relativize rewrites a diagnostic's filename relative to the module
// root when it lies inside it, so output is stable across checkouts.
func relativize(root string, d *analysis.Diagnostic) {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = filepath.ToSlash(rel)
	}
}

var formats = map[string]func(io.Writer, analysis.Summary) error{
	"text":   emitText,
	"json":   emitJSON,
	"sarif":  emitSARIF,
	"github": emitGitHub,
}

func emitText(w io.Writer, sum analysis.Summary) error {
	for _, d := range sum.Diagnostics {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	switch {
	case len(sum.Diagnostics) > 0:
		fmt.Fprintf(w, "keyedeq-lint: %d finding(s), %d suppressed\n", len(sum.Diagnostics), sum.Suppressed)
	case sum.Suppressed > 0:
		fmt.Fprintf(w, "keyedeq-lint: clean, %d suppressed\n", sum.Suppressed)
	}
	return nil
}

// jsonFinding is the stable machine-readable shape of one diagnostic.
type jsonFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func emitJSON(w io.Writer, sum analysis.Summary) error {
	out := struct {
		Findings   []jsonFinding `json:"findings"`
		Suppressed int           `json:"suppressed"`
	}{Findings: []jsonFinding{}, Suppressed: sum.Suppressed}
	for _, d := range sum.Diagnostics {
		out.Findings = append(out.Findings, jsonFinding{
			Rule: d.Rule, File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// emitSARIF writes a minimal SARIF 2.1.0 log: one run, one result per
// finding, rule metadata derived from the catalogue.
func emitSARIF(w io.Writer, sum analysis.Summary) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region sarifRegion `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifRule struct {
		ID string `json:"id"`
	}

	ruleIDs := make(map[string]bool)
	results := []sarifResult{}
	for _, d := range sum.Diagnostics {
		ruleIDs[d.Rule] = true
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = d.Pos.Filename
		loc.PhysicalLocation.Region = sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{loc},
		})
	}
	rules := []sarifRule{}
	for _, r := range analysis.AllRules() {
		if ruleIDs[r.Name()] {
			rules = append(rules, sarifRule{ID: r.Name()})
		}
	}
	// The pseudo-rules have no catalogue entry but still need metadata
	// when they produced results.
	for _, pseudo := range []string{"baddirective", "directive"} {
		if ruleIDs[pseudo] {
			rules = append(rules, sarifRule{ID: pseudo})
		}
	}

	log := map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":  "keyedeq-lint",
					"rules": rules,
				},
			},
			"results": results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// emitGitHub writes GitHub Actions workflow commands so findings show
// up as inline PR annotations.
func emitGitHub(w io.Writer, sum analysis.Summary) error {
	for _, d := range sum.Diagnostics {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=keyedeq-lint %s::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, githubEscape(d.Message))
	}
	if sum.Suppressed > 0 {
		fmt.Fprintf(w, "::notice title=keyedeq-lint::%d finding(s) suppressed by justified directives\n", sum.Suppressed)
	}
	return nil
}

// githubEscape encodes the characters workflow commands reserve in
// message data.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// selectRules resolves a comma-separated rule list against the
// catalogue; empty means all rules.
func selectRules(names string) ([]analysis.Rule, error) {
	all := analysis.AllRules()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]analysis.Rule, len(all))
	known := make([]string, 0, len(all))
	for _, r := range all {
		byName[r.Name()] = r
		known = append(known, r.Name())
	}
	var out []analysis.Rule
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return out, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
