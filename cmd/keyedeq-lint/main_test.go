package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

// writeModule lays out a throwaway module for end-to-end runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

// Double doubles.
func Double(n int) int { return 2 * n }
`,
	})
	code, out := runCLI(t, "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestDirtyModuleExitsOneAndReports(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func MustThing() {
	panic("raw")
}
`,
	})
	code, out := runCLI(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	for _, want := range []string{"internal/lib/lib.go:4:", "[panicgate]", "1 finding(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRuleSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func MustThing() {
	panic("raw")
}
`,
	})
	// The violation is panicgate; running only detmap must be clean.
	code, out := runCLI(t, "-C", dir, "-rules", "detmap")
	if code != 0 {
		t.Fatalf("-rules detmap: exit = %d, want 0; output:\n%s", code, out)
	}
	code, _ = runCLI(t, "-C", dir, "-rules", "panicgate")
	if code != 1 {
		t.Fatalf("-rules panicgate: exit = %d, want 1", code)
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	code, out := runCLI(t, "-rules", "nosuchrule")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; output:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown rule") {
		t.Errorf("output missing rule diagnostics:\n%s", out)
	}
}

func TestJSONFormat(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func MustThing() {
	panic("raw")
}

func allowed() {
	//keyedeq:allow panicgate -- fixture exercises suppression counting
	panic("also raw")
}
`,
	})
	code, out := runCLI(t, "-C", dir, "-format", "json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	var report struct {
		Findings []struct {
			Rule    string `json:"rule"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
		} `json:"findings"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(report.Findings) != 1 || report.Findings[0].Rule != "panicgate" {
		t.Errorf("findings = %+v, want one panicgate", report.Findings)
	}
	if len(report.Findings) == 1 && report.Findings[0].File != "internal/lib/lib.go" {
		t.Errorf("finding file = %q, want module-relative path", report.Findings[0].File)
	}
	if report.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", report.Suppressed)
	}
}

func TestSARIFFormat(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func MustThing() {
	panic("raw")
}
`,
	})
	code, out := runCLI(t, "-C", dir, "-format", "sarif")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single-run SARIF 2.1.0 log:\n%s", out)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "keyedeq-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 1 || run.Results[0].RuleID != "panicgate" || run.Results[0].Level != "error" {
		t.Fatalf("results = %+v, want one panicgate error", run.Results)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/lib/lib.go" || loc.Region.StartLine != 4 {
		t.Errorf("location = %+v, want internal/lib/lib.go:4", loc)
	}
	if len(run.Tool.Driver.Rules) != 1 || run.Tool.Driver.Rules[0].ID != "panicgate" {
		t.Errorf("rule metadata = %+v, want [panicgate]", run.Tool.Driver.Rules)
	}
}

func TestGitHubFormat(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func MustThing() {
	panic("raw")
}
`,
	})
	code, out := runCLI(t, "-C", dir, "-format", "github")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "::error file=internal/lib/lib.go,line=4,") {
		t.Errorf("output missing annotation command:\n%s", out)
	}
	if !strings.Contains(out, "title=keyedeq-lint panicgate::") {
		t.Errorf("output missing rule title:\n%s", out)
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	code, out := runCLI(t, "-format", "xml")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; output:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown format") {
		t.Errorf("output missing format diagnostics:\n%s", out)
	}
}

func TestSuppressedCountInTextOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func allowed() {
	//keyedeq:allow panicgate -- fixture exercises suppression counting
	panic("raw")
}
`,
	})
	code, out := runCLI(t, "-C", dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "clean, 1 suppressed") {
		t.Errorf("output missing suppression count:\n%s", out)
	}
}

func TestRepoStaysClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	code, out := runCLI(t, "-C", root, "./...")
	if code != 0 {
		t.Fatalf("keyedeq-lint on this repo: exit = %d, want 0; output:\n%s", code, out)
	}
}

// hotModuleFiles is a module tripping every allocation rule at least
// once inside one hot function, plus a misattached directive, so the
// output-format tests below exercise the full new-rule surface.
func hotModuleFiles() map[string]string {
	return map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/hot/hot.go": `package hot

import (
	"fmt"
	"sort"
)

type Tuple []int

type rel struct{ tuples []Tuple }

type sink struct{ vals []any }

func (s *sink) add(v any) { s.vals = append(s.vals, v) }

//keyedeq:hot -- test module: trips every allocation rule once
func Scan(r *rel, s *sink) ([]int, map[string]int) {
	var sizes []int
	m := make(map[string]int)
	for i, t := range r.tuples {
		b := make([]byte, 0, len(t))
		_ = b
		sizes = append(sizes, len(t))
		s.add(i)
		k := fmt.Sprintf("t%d", i)
		m[k] = i
		c := make([]int, len(t))
		copy(c, t)
		sort.Ints(c)
	}
	return sizes, m
}

//keyedeq:hot -- misattached: a var declaration marks nothing hot
var knob = 1
`,
		"internal/other/other.go": `package other

func MustThing() {
	panic("raw")
}
`,
	}
}

// TestFindingOrderIsDeterministic loads a multi-package module twice
// per output format and asserts byte-identical reports: the concurrent
// LoadModule schedule must not leak into finding order.
func TestFindingOrderIsDeterministic(t *testing.T) {
	dir := writeModule(t, hotModuleFiles())
	for _, format := range []string{"text", "json", "sarif", "github"} {
		first := ""
		for run := 0; run < 2; run++ {
			code, out := runCLI(t, "-C", dir, "-format", format)
			if code != 1 {
				t.Fatalf("%s run %d: exit = %d, want 1; output:\n%s", format, run, code, out)
			}
			if run == 0 {
				first = out
			} else if out != first {
				t.Errorf("%s output differs between runs:\n--- first ---\n%s--- second ---\n%s", format, first, out)
			}
		}
	}
}

// TestSARIFGoldenForHotRules validates the SARIF required fields —
// ruleId, level, physicalLocation — for the allocation rules and the
// baddirective pseudo-rule.
func TestSARIFGoldenForHotRules(t *testing.T) {
	dir := writeModule(t, hotModuleFiles())
	code, out := runCLI(t, "-C", dir, "-format", "sarif")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want a single run:\n%s", out)
	}
	run := log.Runs[0]

	seen := map[string]int{}
	for _, res := range run.Results {
		seen[res.RuleID]++
		if res.Level != "error" {
			t.Errorf("result %q level = %q, want error", res.RuleID, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %q has an empty message", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result %q has %d locations, want 1", res.RuleID, len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		wantURI := "internal/hot/hot.go"
		if res.RuleID == "panicgate" {
			wantURI = "internal/other/other.go"
		}
		if loc.ArtifactLocation.URI != wantURI {
			t.Errorf("result %q at %q, want %q", res.RuleID, loc.ArtifactLocation.URI, wantURI)
		}
		if loc.Region.StartLine <= 0 || loc.Region.StartColumn <= 0 {
			t.Errorf("result %q has unpositioned region %+v", res.RuleID, loc.Region)
		}
	}
	for _, rule := range []string{"hotalloc", "preallocate", "iface-box", "mapkey", "escapes", "baddirective", "panicgate"} {
		if seen[rule] == 0 {
			t.Errorf("no SARIF result for rule %q; got %v", rule, seen)
		}
	}
	var ruleIDs []string
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs = append(ruleIDs, r.ID)
	}
	for _, rule := range []string{"hotalloc", "preallocate", "iface-box", "mapkey", "escapes", "baddirective"} {
		found := false
		for _, id := range ruleIDs {
			found = found || id == rule
		}
		if !found {
			t.Errorf("driver rule metadata missing %q; got %v", rule, ruleIDs)
		}
	}
}
