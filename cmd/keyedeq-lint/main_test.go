package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

// writeModule lays out a throwaway module for end-to-end runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

// Double doubles.
func Double(n int) int { return 2 * n }
`,
	})
	code, out := runCLI(t, "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestDirtyModuleExitsOneAndReports(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func MustThing() {
	panic("raw")
}
`,
	})
	code, out := runCLI(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	for _, want := range []string{"internal/lib/lib.go:4:", "[panicgate]", "1 finding(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRuleSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example\n\ngo 1.22\n",
		"internal/lib/lib.go": `package lib

func MustThing() {
	panic("raw")
}
`,
	})
	// The violation is panicgate; running only detmap must be clean.
	code, out := runCLI(t, "-C", dir, "-rules", "detmap")
	if code != 0 {
		t.Fatalf("-rules detmap: exit = %d, want 0; output:\n%s", code, out)
	}
	code, _ = runCLI(t, "-C", dir, "-rules", "panicgate")
	if code != 1 {
		t.Fatalf("-rules panicgate: exit = %d, want 1", code)
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	code, out := runCLI(t, "-rules", "nosuchrule")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; output:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown rule") {
		t.Errorf("output missing rule diagnostics:\n%s", out)
	}
}

func TestRepoStaysClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	code, out := runCLI(t, "-C", root, "./...")
	if code != 0 {
		t.Fatalf("keyedeq-lint on this repo: exit = %d, want 0; output:\n%s", code, out)
	}
}
