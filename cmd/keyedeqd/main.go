// Command keyedeqd serves conjunctive query equivalence decisions over
// HTTP: the batch engine behind a JSON API, with per-request timeouts,
// admission control, graceful drain on SIGTERM/SIGINT, and an optional
// persistent verdict store that warm-starts the caches across restarts.
//
// Usage:
//
//	keyedeqd [-addr :8466] [-store verdicts.log] [-sync-every 64]
//	         [-workers N] [-cache N] [-max-inflight 64] [-per-client 8]
//	         [-timeout 30s] [-drain-timeout 15s]
//
// Endpoints (see internal/serve): POST /v1/decide, /v1/batch (NDJSON),
// /v1/schema/equiv, /v1/schema/dominance; GET /v1/stats, /healthz,
// /readyz, /metrics, /debug/vars, /debug/pprof/...
//
// With -store, every computed verdict is appended to a CRC-framed log
// and replayed into the cache on the next boot; a crash (even kill -9)
// loses at most the unsynced tail.  -sync-every 1 makes every verdict
// durable immediately at an fsync-per-decision cost.
//
// On SIGTERM or SIGINT the daemon stops admitting work (readyz flips to
// 503, new requests get 429), lets in-flight requests finish within
// -drain-timeout, flushes the store, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"keyedeq/internal/engine"
	"keyedeq/internal/obs"
	"keyedeq/internal/serve"
	"keyedeq/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("keyedeqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8466", "listen `address`")
	storePath := fs.String("store", "", "verdict log `file`; empty disables persistence")
	syncEvery := fs.Int("sync-every", 64, "fsync the verdict log every `N` appends (negative: only on drain)")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "verdict cache entries per engine (0 = default)")
	maxInFlight := fs.Int("max-inflight", 64, "global concurrent request bound")
	perClient := fs.Int("per-client", 8, "per-client (API key or remote address) concurrent request bound")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-decision timeout (requests may set timeout_ms)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long a drain waits for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "keyedeqd: %v\n", err)
		return 1
	}

	reg := obs.NewRegistry()
	ob := &obs.Obs{Reg: reg, Now: time.Now}

	var log *store.Log
	if *storePath != "" {
		var err error
		log, err = store.Open(*storePath, store.Options{SyncEvery: *syncEvery})
		if err != nil {
			return fail(err)
		}
		defer log.Close()
		rs := log.RecoveryStats()
		fmt.Fprintf(stdout, "keyedeqd: store %s: %d records", *storePath, rs.Records)
		if rs.TruncatedBytes > 0 {
			fmt.Fprintf(stdout, " (truncated %d bytes of torn tail)", rs.TruncatedBytes)
		}
		fmt.Fprintln(stdout)
	}

	srv, err := serve.New(serve.Config{
		Engine: engine.Options{
			Workers:   *workers,
			CacheSize: *cacheSize,
			Now:       time.Now,
		},
		Log:               log,
		Obs:               ob,
		MaxInFlight:       *maxInFlight,
		PerClientInFlight: *perClient,
		DefaultTimeout:    *timeout,
	})
	if err != nil {
		return fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	// The smoke tests parse this line to find a :0 listener's port.
	fmt.Fprintf(stdout, "keyedeqd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail(err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintln(stdout, "keyedeqd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		// In-flight work outlived the deadline: close connections hard,
		// but still report the dirty drain.
		srv.Close()
		<-serveErr
		return fail(fmt.Errorf("drain: %v", err))
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		return fail(err)
	}
	fmt.Fprintln(stdout, "keyedeqd: drained")
	return 0
}
