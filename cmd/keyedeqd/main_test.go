package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the daemon binary once per test into a temp dir.
// The smoke tests exercise the real process boundary — signals, kill
// -9, stdout — which an in-process run(...) call cannot.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "keyedeqd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	return bin
}

type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches bin and parses the listen address off stdout.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			// Drain the rest of stdout so the child never blocks on a
			// full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return &daemon{cmd: cmd, addr: strings.TrimSpace(line[i+len("listening on "):])}
		}
	}
	t.Fatalf("daemon exited before announcing its address (scan err %v)", sc.Err())
	return nil
}

const smokePair = `{"schema":"edge(src:T1, dst:T1)","unkeyed":true,` +
	`"left":"V(X) :- edge(X, Y), edge(W, Z), Y = W.",` +
	`"right":"V(A) :- edge(A, B), edge(C, D), B = C."}`

func decide(t *testing.T, addr string) map[string]interface{} {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Post("http://"+addr+"/v1/decide", "application/json", strings.NewReader(smokePair))
		if err != nil {
			lastErr = err
			time.Sleep(20 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decide status %d", resp.StatusCode)
		}
		var out map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	t.Fatalf("daemon never became reachable: %v", lastErr)
	return nil
}

// TestServeSmoke is the end-to-end durability check CI runs via `make
// serve-smoke`: boot with a store, decide a pair, kill -9, restart on
// the same store, and require the verdict to come back as a warm cache
// hit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon; skipped in -short")
	}
	bin := buildDaemon(t)
	storePath := filepath.Join(t.TempDir(), "verdicts.log")

	d1 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-store", storePath, "-sync-every", "1")
	first := decide(t, d1.addr)
	if first["holds"] != true || first["cache_hit"] == true {
		t.Fatalf("first decision: %v", first)
	}
	// Health endpoints respond while serving.
	resp, err := http.Get("http://" + d1.addr + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", resp, err)
	}
	resp.Body.Close()

	// kill -9: no drain, no sync beyond the per-append fsync.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	d2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-store", storePath, "-sync-every", "1")
	again := decide(t, d2.addr)
	if again["cache_hit"] != true {
		t.Fatalf("decision after kill -9 restart not a warm cache hit: %v", again)
	}
	if again["holds"] != first["holds"] {
		t.Fatalf("verdict drifted across restart: %v vs %v", first, again)
	}
	if fmt.Sprint(again["stats"]) != fmt.Sprint(first["stats"]) {
		t.Fatalf("work stats not frozen across restart: %v vs %v", first["stats"], again["stats"])
	}
}

// TestDrainSmoke checks the SIGTERM path: graceful exit 0 after
// draining, and the store stays replayable.
func TestDrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon; skipped in -short")
	}
	bin := buildDaemon(t)
	storePath := filepath.Join(t.TempDir(), "verdicts.log")
	d := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-store", storePath, "-sync-every", "-1")
	if out := decide(t, d.addr); out["holds"] != true {
		t.Fatalf("decide: %v", out)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited dirty after SIGTERM: %v", err)
	}
	// Drain synced the log even with implicit syncs off: a restart sees
	// the verdict.
	d2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-store", storePath)
	if again := decide(t, d2.addr); again["cache_hit"] != true {
		t.Fatalf("post-drain restart not a warm hit: %v", again)
	}
}
