package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestOnlyOneExperiment(t *testing.T) {
	code, out := runCLI(t, "-only", "T10")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "T10:") {
		t.Errorf("missing T10 table:\n%s", out)
	}
	if strings.Contains(out, "T3:") {
		t.Errorf("unexpected other tables:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, out := runCLI(t, "-only", "T99")
	if code != 2 {
		t.Fatalf("exit = %d: %s", code, out)
	}
}

func TestQuickSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run; skipped in -short")
	}
	code, out := runCLI(t)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"T1:", "T2:", "T3:", "T4:", "T5:", "T6:", "T7:", "T8:", "T9:", "T10:", "F1:", "F2:", "F3:"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing table %s", id)
		}
	}
	if !strings.Contains(out, "total wall time") {
		t.Error("missing footer")
	}
}

func TestBadFlag(t *testing.T) {
	if code, _ := runCLI(t, "-nope"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}

func TestJSONBenchAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the E1 benchmark; skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_engine.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errb); code != 0 {
		t.Fatalf("-json exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("output: %s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-verify-bench", path}, &out, &errb); code != 0 {
		t.Fatalf("-verify-bench exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok (") {
		t.Errorf("verify output: %s", out.String())
	}
}

func TestVerifyBenchRejectsSlowEngine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	record := `{"families":["graph-chain"],"sequential":{"pairs":10},` +
		`"engine":{"pairs":10},"speedup":0.5,"second_pass_hit_rate":1}`
	if err := os.WriteFile(path, []byte(record), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-verify-bench", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "slower") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestVerifyBenchRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	var out, errb bytes.Buffer
	if code := run([]string{"-verify-bench", path}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{"-verify-bench", filepath.Join(dir, "missing.json")}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit = %d, want 2", code)
	}
}
