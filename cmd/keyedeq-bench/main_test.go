package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestOnlyOneExperiment(t *testing.T) {
	code, out := runCLI(t, "-only", "T10")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "T10:") {
		t.Errorf("missing T10 table:\n%s", out)
	}
	if strings.Contains(out, "T3:") {
		t.Errorf("unexpected other tables:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, out := runCLI(t, "-only", "T99")
	if code != 2 {
		t.Fatalf("exit = %d: %s", code, out)
	}
}

func TestQuickSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run; skipped in -short")
	}
	code, out := runCLI(t)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"T1:", "T2:", "T3:", "T4:", "T5:", "T6:", "T7:", "T8:", "T9:", "T10:", "F1:", "F2:", "F3:"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing table %s", id)
		}
	}
	if !strings.Contains(out, "total wall time") {
		t.Error("missing footer")
	}
}

func TestBadFlag(t *testing.T) {
	if code, _ := runCLI(t, "-nope"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}
