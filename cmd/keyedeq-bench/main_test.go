package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"keyedeq/internal/exp"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String() + errb.String()
}

func TestOnlyOneExperiment(t *testing.T) {
	code, out := runCLI(t, "-only", "T10")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "T10:") {
		t.Errorf("missing T10 table:\n%s", out)
	}
	if strings.Contains(out, "T3:") {
		t.Errorf("unexpected other tables:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, out := runCLI(t, "-only", "T99")
	if code != 2 {
		t.Fatalf("exit = %d: %s", code, out)
	}
}

func TestQuickSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run; skipped in -short")
	}
	code, out := runCLI(t)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"T1:", "T2:", "T3:", "T4:", "T5:", "T6:", "T7:", "T8:", "T9:", "T10:", "F1:", "F2:", "F3:"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing table %s", id)
		}
	}
	if !strings.Contains(out, "total wall time") {
		t.Error("missing footer")
	}
}

func TestBadFlag(t *testing.T) {
	if code, _ := runCLI(t, "-nope"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}

func TestJSONBenchAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the E1 benchmark; skipped in -short")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_engine.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errb); code != 0 {
		t.Fatalf("-json exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("output: %s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-verify-bench", path}, &out, &errb); code != 0 {
		t.Fatalf("-verify-bench exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok (") {
		t.Errorf("verify output: %s", out.String())
	}
}

func TestVerifyBenchRejectsSlowEngine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	record := `{"families":["graph-chain"],"sequential":{"pairs":10},` +
		`"engine":{"pairs":10},"speedup":0.5,"second_pass_hit_rate":1}`
	if err := os.WriteFile(path, []byte(record), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-verify-bench", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "slower") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestVerifyBenchRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.json")
	os.WriteFile(path, []byte("not json"), 0o644)
	var out, errb bytes.Buffer
	if code := run([]string{"-verify-bench", path}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{"-verify-bench", filepath.Join(dir, "missing.json")}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit = %d, want 2", code)
	}
}

// TestCompareAllocRecords pins the alloc gate's verdicts without
// running the benchmark: a clean pair passes; a missing case, a record
// over its seed, and a fresh measurement over the headroom each fail.
func TestCompareAllocRecords(t *testing.T) {
	rec := func(chaseAllocs, searchAllocs int64) *exp.AllocBenchResult {
		return &exp.AllocBenchResult{Cases: []exp.AllocCaseResult{
			{Name: "chase/rows-1000", AllocsPerOp: chaseAllocs, SeedAllocsPerOp: 882},
			{Name: "search/clique-4", AllocsPerOp: searchAllocs, SeedAllocsPerOp: 258},
			{Name: "intern/rows-1M", AllocsPerOp: 8212, SeedAllocsPerOp: 9881004},
		}}
	}
	if problems := compareAllocRecords(rec(18, 228), rec(19, 228)); len(problems) != 0 {
		t.Errorf("clean pair flagged: %v", problems)
	}
	if problems := compareAllocRecords(rec(18, 228), rec(100, 228)); len(problems) != 1 {
		t.Errorf("fresh chase over 110%% headroom: got %v, want 1 problem", problems)
	}
	if problems := compareAllocRecords(rec(3000, 228), rec(18, 228)); len(problems) != 1 {
		t.Errorf("record over pre-fix seed: got %v, want 1 problem", problems)
	}
	missing := &exp.AllocBenchResult{Cases: []exp.AllocCaseResult{
		{Name: "chase/rows-1000", AllocsPerOp: 18, SeedAllocsPerOp: 882},
		{Name: "intern/rows-1M", AllocsPerOp: 8212, SeedAllocsPerOp: 9881004},
	}}
	if problems := compareAllocRecords(missing, rec(18, 228)); len(problems) != 1 {
		t.Errorf("missing committed case: got %v, want 1 problem", problems)
	}
	if problems := compareAllocRecords(rec(18, 228), missing); len(problems) != 1 {
		t.Errorf("missing fresh case: got %v, want 1 problem", problems)
	}
	if problems := compareAllocRecords(rec(0, 228), rec(18, 228)); len(problems) != 1 {
		t.Errorf("non-positive recorded allocs: got %v, want 1 problem", problems)
	}
}

// TestVerifyBenchSingleCoreWarning pins the gomaxprocs stamp handling
// with synthetic records: a single-core record still verifies (its
// fingerprints are real) but warns loudly that its wall times carry no
// scaling claim; a multi-core record verifies silently.
func TestVerifyBenchSingleCoreWarning(t *testing.T) {
	dir := t.TempDir()
	record := func(gmp, ncpu int) string {
		sweep := `[{"workers":1,"wall_ns":100,"ns_per_op":10,"nodes":5,"holding":2},` +
			`{"workers":4,"wall_ns":90,"ns_per_op":9,"nodes":5,"holding":2},` +
			`{"workers":8,"wall_ns":80,"ns_per_op":8,"nodes":5,"holding":2}]`
		return `{"families":["graph-chain"],"sequential":{"pairs":10},"engine":{"pairs":10},` +
			`"speedup":1.5,"second_pass_hit_rate":1,` +
			`"gomaxprocs":` + itoa(gmp) + `,"num_cpu":` + itoa(ncpu) + `,"worker_sweep":` + sweep + `}`
	}

	single := filepath.Join(dir, "single.json")
	if err := os.WriteFile(single, []byte(record(1, 16)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-verify-bench", single}, &out, &errb); code != 0 {
		t.Fatalf("single-core record must still verify, exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "WARNING") ||
		!strings.Contains(errb.String(), "gomaxprocs 1") ||
		!strings.Contains(errb.String(), "16 CPUs") {
		t.Errorf("missing single-core warning, stderr: %q", errb.String())
	}

	multi := filepath.Join(dir, "multi.json")
	if err := os.WriteFile(multi, []byte(record(8, 8)), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-verify-bench", multi}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if strings.Contains(errb.String(), "WARNING") {
		t.Errorf("unexpected warning on multi-core record: %q", errb.String())
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
