// Command keyedeq-bench regenerates every table and figure of the
// reproduction's evaluation suite (DESIGN.md §4, EXPERIMENTS.md): the
// empirical validations of Theorems 9 and 13 and Lemmas 1-12, and the
// scaling studies of containment, the chase, mapping composition, the
// equivalence decision procedures, and FD reasoning.
//
// Usage:
//
//	keyedeq-bench                       # quick suite (seconds)
//	keyedeq-bench -full                 # full suite (stresses the exponential corners)
//	keyedeq-bench -only T3              # one experiment by ID
//	keyedeq-bench -json BENCH_engine.json   # run E1 and write the regression record
//	keyedeq-bench -verify-bench BENCH_engine.json  # gate: parse + engine not slower
//
// -parallel and -cache tune the batch engine E1 benchmarks with (0 =
// defaults; -cache -1 disables the verdict cache).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"keyedeq/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("keyedeq-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run the full-size suite")
	only := fs.String("only", "", "run only the experiment with this ID (e.g. T3, F1)")
	jsonOut := fs.String("json", "", "run the E1 engine benchmark and write its regression record to this file")
	verifyBench := fs.String("verify-bench", "", "verify a previously written regression record and exit")
	parallel := fs.Int("parallel", 0, "engine worker pool size for E1 (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "engine verdict cache entries for E1 (0 = fit corpus, <0 = disable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *verifyBench != "" {
		return verifyBenchFile(*verifyBench, stdout, stderr)
	}
	if *jsonOut != "" {
		return writeBenchFile(*jsonOut, *full, *parallel, *cacheSize, stdout, stderr)
	}

	cfg := exp.Config{Quick: !*full}
	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(stdout, "keyedeq evaluation suite (%s mode)\n", mode)
	fmt.Fprintf(stdout, "start: %s\n\n", time.Now().Format(time.RFC3339))

	start := time.Now()
	tables := exp.All(cfg)
	ran := 0
	for _, t := range tables {
		if *only != "" && !strings.EqualFold(t.ID, *only) {
			continue
		}
		fmt.Fprintln(stdout, t)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "keyedeq-bench: no experiment %q\n", *only)
		return 2
	}
	fmt.Fprintf(stdout, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// writeBenchFile runs the E1 engine-vs-sequential benchmark and writes
// the machine-readable regression record (ns/op, nodes, cache hit
// rates, speedup) for CI's bench smoke gate.
func writeBenchFile(path string, full bool, workers, cacheSize int, stdout, stderr io.Writer) int {
	pairs := 300
	if full {
		pairs = 1000
	}
	table, res := exp.E1EngineBatch(pairs, workers, cacheSize, 11)
	fmt.Fprintln(stdout, table)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s (speedup %.2fx)\n", path, res.Speedup)
	return 0
}

// verifyBenchFile is the CI gate over a written record: the file must
// parse, cover every corpus family, and show the engine no slower than
// the sequential baseline.
func verifyBenchFile(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	var res exp.EngineBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %s: %v\n", path, err)
		return 2
	}
	var problems []string
	if len(res.Families) == 0 {
		problems = append(problems, "no families recorded")
	}
	if res.Seq.Pairs == 0 || res.Eng.Pairs == 0 {
		problems = append(problems, "no pairs recorded")
	}
	if res.Speedup < 1 {
		problems = append(problems, fmt.Sprintf("engine slower than sequential (speedup %.2fx)", res.Speedup))
	}
	if res.SecondPassHitRate < 1 {
		problems = append(problems, fmt.Sprintf("second pass not fully cached (hit rate %.2f)", res.SecondPassHitRate))
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "keyedeq-bench: %s: %s\n", path, p)
		}
		return 1
	}
	fmt.Fprintf(stdout, "%s: ok (%d pairs, speedup %.2fx, second-pass hit rate %.2f)\n",
		path, res.Eng.Pairs, res.Speedup, res.SecondPassHitRate)
	return 0
}
