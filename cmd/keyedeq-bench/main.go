// Command keyedeq-bench regenerates every table and figure of the
// reproduction's evaluation suite (DESIGN.md §4, EXPERIMENTS.md): the
// empirical validations of Theorems 9 and 13 and Lemmas 1-12, and the
// scaling studies of containment, the chase, mapping composition, the
// equivalence decision procedures, and FD reasoning.
//
// Usage:
//
//	keyedeq-bench                       # quick suite (seconds)
//	keyedeq-bench -full                 # full suite (stresses the exponential corners)
//	keyedeq-bench -only T3              # one experiment by ID
//	keyedeq-bench -json BENCH_engine.json                 # run E1 and write the regression record
//	keyedeq-bench -record hom -json BENCH_homsearch.json  # run H1 (planned vs naive search)
//	keyedeq-bench -record alloc -json BENCH_alloc.json    # run A1 (hot-path allocs/op)
//	keyedeq-bench -verify-bench BENCH_engine.json         # gate: parse + engine not slower
//	keyedeq-bench -record hom -verify-bench BENCH_homsearch.json
//	keyedeq-bench -record alloc -verify-bench BENCH_alloc.json  # gate: re-measure, <= 110% of record
//	keyedeq-bench -verify-obs BENCH_homsearch.json        # gate: metrics overhead <= 2%, node totals unchanged
//
// -parallel and -cache tune the batch engine E1 benchmarks with (0 =
// defaults; -cache -1 disables the verdict cache).  -cpuprofile and
// -memprofile write pprof profiles of whatever the invocation runs.
//
// Observability: -metrics collects pipeline counters during the run
// and prints the Prometheus exposition on exit (with -json record
// runs, the exported totals reconcile exactly with the record's
// per-job statistics); -trace out.jsonl writes one JSON span per
// pipeline stage; -pprof-http :6060 serves /debug/pprof, /debug/vars,
// and /metrics while the suite runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"keyedeq/internal/cli"
	"keyedeq/internal/exp"
	"keyedeq/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("keyedeq-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run the full-size suite")
	only := fs.String("only", "", "run only the experiment with this ID (e.g. T3, F1)")
	jsonOut := fs.String("json", "", "run the selected benchmark record and write it to this file")
	verifyBench := fs.String("verify-bench", "", "verify a previously written regression record and exit")
	record := fs.String("record", "engine", "which regression record -json/-verify-bench handles: engine (E1), hom (H1), or alloc (A1)")
	parallel := fs.Int("parallel", 0, "engine worker pool size for E1 (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "engine verdict cache entries for E1 (0 = fit corpus, <0 = disable)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	verifyObs := fs.String("verify-obs", "", "run the observability overhead gate and cross-check node totals against this H1 record")
	var of cli.ObsFlags
	of.Register(fs)
	var sf cli.SearchFlags
	sf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := sf.Apply(); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	if *record != "engine" && *record != "hom" && *record != "alloc" {
		fmt.Fprintf(stderr, "keyedeq-bench: unknown record %q (want engine, hom, or alloc)\n", *record)
		return 2
	}
	ob, err := of.Setup(time.Now)
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	defer func() {
		if cerr := ob.Close(stdout); cerr != nil {
			fmt.Fprintf(stderr, "keyedeq-bench: %v\n", cerr)
		}
	}()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
			}
		}()
	}

	if *verifyObs != "" {
		return verifyObsFile(*verifyObs, stdout, stderr)
	}
	if *verifyBench != "" {
		switch *record {
		case "hom":
			return verifyHomBenchFile(*verifyBench, stdout, stderr)
		case "alloc":
			return verifyAllocBenchFile(*verifyBench, stdout, stderr)
		}
		return verifyBenchFile(*verifyBench, stdout, stderr)
	}
	if *jsonOut != "" {
		switch *record {
		case "hom":
			return writeHomBenchFile(*jsonOut, *full, ob.Obs, stdout, stderr)
		case "alloc":
			return writeAllocBenchFile(*jsonOut, stdout, stderr)
		}
		return writeBenchFile(*jsonOut, *full, *parallel, *cacheSize, ob.Obs, stdout, stderr)
	}

	cfg := exp.Config{Quick: !*full}
	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(stdout, "keyedeq evaluation suite (%s mode)\n", mode)
	fmt.Fprintf(stdout, "start: %s\n\n", time.Now().Format(time.RFC3339))

	start := time.Now()
	tables := exp.All(cfg)
	ran := 0
	for _, t := range tables {
		if *only != "" && !strings.EqualFold(t.ID, *only) {
			continue
		}
		fmt.Fprintln(stdout, t)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "keyedeq-bench: no experiment %q\n", *only)
		return 2
	}
	fmt.Fprintf(stdout, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// sweepWorkerCounts are the fixed pool sizes the engine record's
// multi-worker section measures.
var sweepWorkerCounts = []int{1, 4, 8}

// writeBenchFile runs the E1 engine-vs-sequential benchmark plus the
// E2 worker sweep and writes the machine-readable regression record
// (ns/op, nodes, cache hit rates, speedup, per-pool-size walls) for
// CI's bench smoke gate.
func writeBenchFile(path string, full bool, workers, cacheSize int, o *obs.Obs, stdout, stderr io.Writer) int {
	pairs := 300
	if full {
		pairs = 1000
	}
	table, res := exp.E1EngineBatch(pairs, workers, cacheSize, 11, o)
	fmt.Fprintln(stdout, table)
	sweepTable, sweep, err := exp.E1WorkerSweep(pairs, cacheSize, 11, sweepWorkerCounts)
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: worker sweep: %v\n", err)
		return 2
	}
	fmt.Fprintln(stdout, sweepTable)
	res.GoMaxProcs = runtime.GOMAXPROCS(0)
	res.NumCPU = runtime.NumCPU()
	res.Sweep = sweep
	if writeJSON(path, res, stderr) != 0 {
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s (speedup %.2fx, %d-point worker sweep)\n", path, res.Speedup, len(sweep))
	return 0
}

// writeHomBenchFile runs the H1 planned-vs-naive homomorphism search
// benchmark and writes its regression record.
func writeHomBenchFile(path string, full bool, o *obs.Obs, stdout, stderr io.Writer) int {
	pairs := 300
	if full {
		pairs = 1000
	}
	table, res := exp.H1HomSearch(pairs, 21, o)
	fmt.Fprintln(stdout, table)
	if writeJSON(path, res, stderr) != 0 {
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s (speedup %.2fx, wide node ratio %.1fx)\n",
		path, res.Speedup, res.WideNodeRatio)
	return 0
}

func writeJSON(path string, v interface{}, stderr io.Writer) int {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	return 0
}

// verifyBenchFile is the CI gate over a written record: the file must
// parse, cover every corpus family, and show the engine no slower than
// the sequential baseline.
func verifyBenchFile(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	var res exp.EngineBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %s: %v\n", path, err)
		return 2
	}
	var problems []string
	if len(res.Families) == 0 {
		problems = append(problems, "no families recorded")
	}
	if res.Seq.Pairs == 0 || res.Eng.Pairs == 0 {
		problems = append(problems, "no pairs recorded")
	}
	if res.Speedup < 1 {
		problems = append(problems, fmt.Sprintf("engine slower than sequential (speedup %.2fx)", res.Speedup))
	}
	if res.SecondPassHitRate < 1 {
		problems = append(problems, fmt.Sprintf("second pass not fully cached (hit rate %.2f)", res.SecondPassHitRate))
	}
	problems = append(problems, checkWorkerSweep(&res)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "keyedeq-bench: %s: %s\n", path, p)
		}
		return 1
	}
	if res.GoMaxProcs <= 1 {
		// Not a failure: the sweep's fingerprints are still checked, but
		// every wall-time claim in the record was measured without real
		// parallelism, so say so loudly.
		fmt.Fprintf(stderr, "keyedeq-bench: WARNING: %s was recorded with gomaxprocs %d (machine has %d CPUs); its wall-time speedups are not a scaling claim — re-record on a multi-core runner for those\n",
			path, res.GoMaxProcs, res.NumCPU)
	}
	fmt.Fprintf(stdout, "%s: ok (%d pairs, speedup %.2fx, second-pass hit rate %.2f, %d-point worker sweep)\n",
		path, res.Eng.Pairs, res.Speedup, res.SecondPassHitRate, len(res.Sweep))
	return 0
}

// checkWorkerSweep validates the engine record's multi-worker section:
// every required pool size present with honest measurements, and an
// identical work fingerprint at every size — worker count may move
// wall time, never verdicts.  Wall-time scaling is only judged when
// the record was taken with real parallelism available (GoMaxProcs >
// 1); a single-core record's sweep is kept for its fingerprints alone.
func checkWorkerSweep(res *exp.EngineBenchResult) []string {
	var problems []string
	if res.GoMaxProcs < 1 {
		problems = append(problems, fmt.Sprintf("record carries gomaxprocs %d; re-record with the current tool", res.GoMaxProcs))
	}
	seen := map[int]exp.WorkerSweepEntry{}
	for _, e := range res.Sweep {
		if e.WallNs <= 0 || e.NsPerOp <= 0 {
			problems = append(problems, fmt.Sprintf("worker sweep entry %d has no timing", e.Workers))
		}
		seen[e.Workers] = e
	}
	for _, want := range sweepWorkerCounts {
		if _, ok := seen[want]; !ok {
			problems = append(problems, fmt.Sprintf("worker sweep missing the %d-worker point", want))
		}
	}
	for i := 1; i < len(res.Sweep); i++ {
		a, b := res.Sweep[0], res.Sweep[i]
		if a.Nodes != b.Nodes || a.Holding != b.Holding {
			problems = append(problems, fmt.Sprintf(
				"worker sweep fingerprints diverge: %d workers (%d nodes, %d holding) vs %d workers (%d nodes, %d holding)",
				a.Workers, a.Nodes, a.Holding, b.Workers, b.Nodes, b.Holding))
		}
	}
	return problems
}

// verifyHomBenchFile is the CI gate over the H1 record: the file must
// parse, cover every corpus family including the wide one, agree on
// every verdict, show the measured runtime at least 1.5x faster
// overall with at least 5x fewer search nodes on the wide family, and
// — the adaptive runtime's reason to exist — lose to naive on NO
// family: every per-family speedup must be at least 1.0x.
func verifyHomBenchFile(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	var res exp.HomBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %s: %v\n", path, err)
		return 2
	}
	var problems []string
	if len(res.Families) == 0 {
		problems = append(problems, "no families recorded")
	}
	hasWide := false
	for _, f := range res.Families {
		if f.Pairs == 0 {
			problems = append(problems, fmt.Sprintf("family %s has no pairs", f.Family))
		}
		if f.Family == "wide" {
			hasWide = true
		}
		if f.Speedup < 1.0 {
			problems = append(problems, fmt.Sprintf(
				"family %s slower than naive (speedup %.2fx); the adaptive runtime must never lose a family",
				f.Family, f.Speedup))
		}
	}
	if !hasWide {
		problems = append(problems, "wide family missing from record")
	}
	if res.Mismatches != 0 {
		problems = append(problems, fmt.Sprintf("%d verdict mismatches between modes", res.Mismatches))
	}
	if res.Speedup < 1.5 {
		problems = append(problems, fmt.Sprintf("planned search not 1.5x faster overall (speedup %.2fx)", res.Speedup))
	}
	if res.WideNodeRatio < 5 {
		problems = append(problems, fmt.Sprintf("wide family node ratio %.1fx, want >= 5x", res.WideNodeRatio))
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "keyedeq-bench: %s: %s\n", path, p)
		}
		return 1
	}
	fmt.Fprintf(stdout, "%s: ok (speedup %.2fx, wide node ratio %.1fx, mismatches %d)\n",
		path, res.Speedup, res.WideNodeRatio, res.Mismatches)
	return 0
}

// writeAllocBenchFile runs the A1 hot-path allocation benchmark and
// writes its regression record.
func writeAllocBenchFile(path string, stdout, stderr io.Writer) int {
	table, res := exp.A1AllocBench()
	fmt.Fprintln(stdout, table)
	if len(res.Cases) != len(exp.AllocCaseNames()) {
		fmt.Fprintf(stderr, "keyedeq-bench: alloc record incomplete (%d of %d cases ran)\n",
			len(res.Cases), len(exp.AllocCaseNames()))
		return 2
	}
	if writeJSON(path, res, stderr) != 0 {
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return 0
}

// allocHeadroom is the slack the alloc gate grants a fresh measurement
// over the committed record: allocation counts on these deterministic
// workloads barely move, but map-growth timing can shift a handful of
// allocations between runs.
const allocHeadroom = 1.10

// verifyAllocBenchFile is the CI gate over the A1 record: the committed
// file must parse and carry every case at or under its pre-fix seed,
// and a fresh in-process measurement must come in at or under
// allocHeadroom times the committed allocs/op — so hot-path allocation
// regressions fail CI even when they slip past the static rules.
func verifyAllocBenchFile(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	var rec exp.AllocBenchResult
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %s: %v\n", path, err)
		return 2
	}
	table, fresh := exp.A1AllocBench()
	fmt.Fprintln(stdout, table)
	problems := compareAllocRecords(&rec, fresh)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "keyedeq-bench: %s: %s\n", path, p)
		}
		return 1
	}
	for _, name := range exp.AllocCaseNames() {
		c, _ := rec.Case(name)
		f, _ := fresh.Case(name)
		fmt.Fprintf(stdout, "%s: %s ok (measured %d allocs/op, committed %d, seed %d)\n",
			path, name, f.AllocsPerOp, c.AllocsPerOp, c.SeedAllocsPerOp)
	}
	return 0
}

// compareAllocRecords checks a fresh A1 measurement against the
// committed record, returning the list of gate violations.
func compareAllocRecords(committed, fresh *exp.AllocBenchResult) []string {
	var problems []string
	for _, name := range exp.AllocCaseNames() {
		c, ok := committed.Case(name)
		if !ok {
			problems = append(problems, fmt.Sprintf("case %s missing from record", name))
			continue
		}
		if c.AllocsPerOp <= 0 {
			problems = append(problems, fmt.Sprintf("%s: non-positive allocs/op %d recorded", name, c.AllocsPerOp))
			continue
		}
		if c.AllocsPerOp > c.SeedAllocsPerOp {
			problems = append(problems, fmt.Sprintf("%s: recorded %d allocs/op exceeds the pre-fix seed %d",
				name, c.AllocsPerOp, c.SeedAllocsPerOp))
		}
		f, ok := fresh.Case(name)
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: fresh measurement failed", name))
			continue
		}
		limit := int64(float64(c.AllocsPerOp) * allocHeadroom)
		if f.AllocsPerOp > limit {
			problems = append(problems, fmt.Sprintf("%s: measured %d allocs/op, over the committed %d (limit %d)",
				name, f.AllocsPerOp, c.AllocsPerOp, limit))
		}
	}
	return problems
}

// obsOverheadBudget is the gate on what metrics collection may cost
// the planned homomorphism search: observed wall time at most 2% above
// the unobserved fast path, both taken as minima over interleaved
// trials in the same process.
const obsOverheadBudget = 1.02

// obsGateAttempts bounds how often the overhead measurement may be
// retaken when it lands over budget.  Scheduler interference only ever
// inflates wall time, so one clean measurement is valid evidence the
// true overhead fits the budget, while a real regression fails every
// attempt.
const obsGateAttempts = 3

// verifyObsFile is the CI gate over the observability layer: run the
// in-process overhead measurement, require the metrics arm within the
// budget, the exported counters in exact agreement with per-search
// sums, and the per-family planned node totals identical to the
// committed H1 record (instrumentation must never change what the
// search does).
func verifyObsFile(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
		return 2
	}
	var rec exp.HomBenchResult
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintf(stderr, "keyedeq-bench: %s: %v\n", path, err)
		return 2
	}
	if len(rec.Families) == 0 {
		fmt.Fprintf(stderr, "keyedeq-bench: %s: no families recorded\n", path)
		return 2
	}
	pairs := rec.Families[0].Pairs

	var res *exp.ObsGateResult
	for attempt := 1; ; attempt++ {
		table, r, err := exp.ObsOverheadGate(pairs, 21, 7)
		if err != nil {
			fmt.Fprintf(stderr, "keyedeq-bench: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, table)
		res = r
		if res.Overhead <= obsOverheadBudget || attempt == obsGateAttempts {
			break
		}
		fmt.Fprintf(stdout, "attempt %d/%d over budget (%.2f%%), remeasuring\n",
			attempt, obsGateAttempts, (res.Overhead-1)*100)
	}

	var problems []string
	if res.Overhead > obsOverheadBudget {
		problems = append(problems, fmt.Sprintf(
			"metrics overhead %.2f%% above the %.0f%% budget",
			(res.Overhead-1)*100, (obsOverheadBudget-1)*100))
	}
	if !res.Reconciled {
		problems = append(problems, "exported search counters disagree with per-search sums")
	}
	for _, f := range rec.Families {
		got, ok := res.FamilyNodes[f.Family]
		if !ok {
			problems = append(problems, fmt.Sprintf("family %s missing from the gate run", f.Family))
			continue
		}
		if got != f.PlannedNodes {
			problems = append(problems, fmt.Sprintf(
				"family %s: %d planned nodes under observation, record says %d",
				f.Family, got, f.PlannedNodes))
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(stderr, "keyedeq-bench: %s: %s\n", path, p)
		}
		return 1
	}
	fmt.Fprintf(stdout, "%s: ok (overhead %.2f%%, %d searches/pass, node totals match the record)\n",
		path, (res.Overhead-1)*100, res.Searches)
	return 0
}
