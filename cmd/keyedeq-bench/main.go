// Command keyedeq-bench regenerates every table and figure of the
// reproduction's evaluation suite (DESIGN.md §4, EXPERIMENTS.md): the
// empirical validations of Theorems 9 and 13 and Lemmas 1-12, and the
// scaling studies of containment, the chase, mapping composition, the
// equivalence decision procedures, and FD reasoning.
//
// Usage:
//
//	keyedeq-bench            # quick suite (seconds)
//	keyedeq-bench -full      # full suite (stresses the exponential corners)
//	keyedeq-bench -only T3   # one experiment by ID
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"keyedeq/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("keyedeq-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run the full-size suite")
	only := fs.String("only", "", "run only the experiment with this ID (e.g. T3, F1)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := exp.Config{Quick: !*full}
	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(stdout, "keyedeq evaluation suite (%s mode)\n", mode)
	fmt.Fprintf(stdout, "start: %s\n\n", time.Now().Format(time.RFC3339))

	start := time.Now()
	tables := exp.All(cfg)
	ran := 0
	for _, t := range tables {
		if *only != "" && !strings.EqualFold(t.ID, *only) {
			continue
		}
		fmt.Fprintln(stdout, t)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "keyedeq-bench: no experiment %q\n", *only)
		return 2
	}
	fmt.Fprintf(stdout, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	return 0
}
