package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestEquivalentInline(t *testing.T) {
	code, out, _ := runCLI(t, "-e", "r(a*:T1, b:T2)", "-e2", "s(x:T2, y*:T1)")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "equivalent") {
		t.Errorf("output: %s", out)
	}
}

func TestNotEquivalentExitCode(t *testing.T) {
	code, out, _ := runCLI(t, "-e", "r(a*:T1)", "-e2", "s(x*:T2)")
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "not equivalent") {
		t.Errorf("output: %s", out)
	}
}

func TestWitnessAndVerify(t *testing.T) {
	code, out, _ := runCLI(t, "-witness", "-verify",
		"-e", "r(a*:T1, b:T2)", "-e2", "s(x:T2, y*:T1)")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"witness α", "witness β", "symbolic verification (validity + β∘α = id): true"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSearchFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-search", "-e", "r(a*:T1)", "-e2", "s(y*:T1)")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "bounded mapping search: equivalent=true") {
		t.Errorf("output: %s", out)
	}
}

func TestSchemaFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "s1.txt")
	f2 := filepath.Join(dir, "s2.txt")
	os.WriteFile(f1, []byte("r(a*:T1, b:T2)\n"), 0o644)
	os.WriteFile(f2, []byte("p(x:T2, y*:T1)\n"), 0o644)
	code, out, _ := runCLI(t, f1, f2)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("missing schemas should exit 2")
	}
	if code, _, _ := runCLI(t, "-e", "bogus((", "-e2", "r(a*:T1)"); code != 2 {
		t.Error("bad schema should exit 2")
	}
	if code, _, _ := runCLI(t, "/nonexistent/file", "/nonexistent/file2"); code != 2 {
		t.Error("missing file should exit 2")
	}
	if code, _, _ := runCLI(t, "-badflag"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}

func TestUserSuppliedPair(t *testing.T) {
	dir := t.TempDir()
	alpha := filepath.Join(dir, "alpha.txt")
	beta := filepath.Join(dir, "beta.txt")
	os.WriteFile(alpha, []byte("p(Y, X) :- r(X, Y).\n"), 0o644)
	os.WriteFile(beta, []byte("r(Y, X) :- p(X, Y).\n"), 0o644)
	code, out, _ := runCLI(t,
		"-e", "r(a*:T1, b:T2)", "-e2", "p(x:T2, y*:T1)",
		"-alpha", alpha, "-beta", beta)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, out)
	}
	if !strings.Contains(out, "β∘α = id): true") {
		t.Errorf("output:\n%s", out)
	}
	// A lossy pair must be rejected with exit 1.
	os.WriteFile(alpha, []byte("p(T2:1, X) :- r(X, Y).\n"), 0o644)
	os.WriteFile(beta, []byte("r(Y, T2:1) :- p(X, Y).\n"), 0o644)
	code, out, _ = runCLI(t,
		"-e", "r(a*:T1, b:T2)", "-e2", "p(x:T2, y*:T1)",
		"-alpha", alpha, "-beta", beta)
	if code != 1 {
		t.Fatalf("lossy pair exit = %d: %s", code, out)
	}
	// -alpha without -beta is a usage error.
	if code, _, _ := runCLI(t, "-e", "r(a*:T1)", "-e2", "p(y*:T1)", "-alpha", alpha); code != 2 {
		t.Error("missing -beta should exit 2")
	}
	// Unreadable/unparsable mapping files.
	if code, _, _ := runCLI(t, "-e", "r(a*:T1)", "-e2", "p(y*:T1)",
		"-alpha", "/nonexistent", "-beta", beta); code != 2 {
		t.Error("missing alpha file should exit 2")
	}
	os.WriteFile(alpha, []byte("zz(X) :- r(X).\n"), 0o644)
	os.WriteFile(beta, []byte("r(X) :- p(X).\n"), 0o644)
	if code, _, _ := runCLI(t, "-e", "r(a*:T1)", "-e2", "p(y*:T1)",
		"-alpha", alpha, "-beta", beta); code != 2 {
		t.Error("bad alpha mapping should exit 2")
	}
}

func TestSearchParallelCacheFlags(t *testing.T) {
	code, out, _ := runCLI(t, "-search", "-parallel", "2", "-cache", "64",
		"-e", "r(a*:T1, b:T2)", "-e2", "s(x:T2, y*:T1)")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "bounded mapping search: equivalent=true") {
		t.Errorf("output: %s", out)
	}
	if !strings.Contains(out, "engine cache:") {
		t.Errorf("missing engine cache stats in output:\n%s", out)
	}
}

func TestSearchCacheDisabled(t *testing.T) {
	code, out, _ := runCLI(t, "-search", "-cache", "-1",
		"-e", "r(a*:T1)", "-e2", "s(y*:T1)")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "engine cache: 0 hits / 0 misses") {
		t.Errorf("cache should be disabled (no traffic):\n%s", out)
	}
}
