// Command sqeq decides conjunctive query equivalence of keyed relational
// schemas (Theorem 13 of Albert/Ioannidis/Ramakrishnan, PODS 1997).
//
// Usage:
//
//	sqeq [-witness] [-verify] [-search] schema1.txt schema2.txt
//	sqeq -e "r(a*:T1, b:T2)" -e2 "s(x:T2, y*:T1)"
//	sqeq -e ... -e2 ... -alpha alpha.txt -beta beta.txt
//	sqeq -search -parallel 4 -cache 8192 schema1.txt schema2.txt
//
// With -search, -parallel sizes the worker pool of the bounded mapping
// search and -cache bounds the batch engine's verdict cache (0 picks
// the defaults; -cache -1 disables caching).
//
// Observability (most useful with -search, whose decisions run the
// instrumented batch engine): -metrics prints Prometheus-text counters
// on exit, -trace out.jsonl writes one JSON span per pipeline stage,
// and -pprof-http :6060 serves /debug/pprof, /debug/vars, and
// /metrics while the process runs.
//
// With -alpha and -beta, sqeq verifies a USER-SUPPLIED dominance pair
// instead: both mapping files (one view per line, named for the
// destination relation) are checked for validity and β∘α = id
// symbolically.
//
// Schema files contain one relation per line, key attributes starred:
//
//	employee(ss*:T1, eName:T2, salary:T3, depId:T4)
//	department(deptId*:T4, deptName:T5, mgr:T1)
//
// Exit status: 0 equivalent, 1 not equivalent, 2 usage or input error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"keyedeq"
	"keyedeq/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sqeq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	witness := fs.Bool("witness", false, "print the witness conjunctive query mappings")
	verify := fs.Bool("verify", false, "symbolically verify the witness (validity + β∘α = id)")
	search := fs.Bool("search", false, "ALSO decide by bounded mapping search and report agreement")
	inline1 := fs.String("e", "", "first schema given inline instead of a file")
	inline2 := fs.String("e2", "", "second schema given inline instead of a file")
	alphaFile := fs.String("alpha", "", "file with a candidate mapping schema1 → schema2 to verify")
	betaFile := fs.String("beta", "", "file with a candidate mapping schema2 → schema1 to verify")
	parallel := fs.Int("parallel", 0, "worker pool size for -search (0 = GOMAXPROCS, 1 = sequential)")
	cacheSize := fs.Int("cache", 0, "verdict cache entries for -search (0 = default, <0 = disable)")
	var of cli.ObsFlags
	of.Register(fs)
	var sf cli.SearchFlags
	sf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := sf.Apply(); err != nil {
		fmt.Fprintf(stderr, "sqeq: %v\n", err)
		return 2
	}

	fail := cli.Fail(stderr, "sqeq")
	ob, err := of.Setup(time.Now)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if cerr := ob.Close(stdout); cerr != nil {
			fmt.Fprintf(stderr, "sqeq: %v\n", cerr)
		}
	}()
	s1, err := loadSchema(fs, *inline1, 0)
	if err != nil {
		return fail(err)
	}
	s2, err := loadSchema(fs, *inline2, 1)
	if err != nil {
		return fail(err)
	}

	if (*alphaFile == "") != (*betaFile == "") {
		return fail(fmt.Errorf("-alpha and -beta must be given together"))
	}
	if *alphaFile != "" {
		return verifyUserPair(s1, s2, *alphaFile, *betaFile, stdout, stderr)
	}

	fmt.Fprintln(stdout, keyedeq.ExplainEquivalence(s1, s2))
	eq := keyedeq.Equivalent(s1, s2)

	if *witness || *verify {
		w, ok, err := keyedeq.EquivalentWithWitness(s1, s2)
		if err != nil {
			return fail(err)
		}
		if ok {
			fmt.Fprintln(stdout, "\nwitness α (schema 1 → schema 2):")
			fmt.Fprintln(stdout, w.Alpha)
			fmt.Fprintln(stdout, "\nwitness β (schema 2 → schema 1):")
			fmt.Fprintln(stdout, w.Beta)
			if *verify {
				good, err := keyedeq.VerifyDominance(w.Alpha, w.Beta)
				if err != nil {
					return fail(err)
				}
				fmt.Fprintf(stdout, "\nsymbolic verification (validity + β∘α = id): %v\n", good)
			}
		}
	}

	if *search {
		b := keyedeq.DefaultSearchBounds()
		// The mapping search decides many candidate view pairs over the
		// same two schemas — exactly the batch shape the engine's
		// canonical-query cache deduplicates, so route its equivalence
		// calls through an engine pool.  Ctrl-C cancels the context,
		// which stops the pair loop and aborts in-flight chases instead
		// of letting a long search run to completion.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		pool := keyedeq.NewEnginePool(keyedeq.EngineOptions{
			Workers:      *parallel,
			CacheSize:    *cacheSize,
			DisableCache: *cacheSize < 0,
			Obs:          ob.Obs,
		})
		found, stats, err := keyedeq.SearchEquivalenceCtx(ctx, s1, s2, b, keyedeq.SearchOptions{
			Workers:  *parallel,
			EquivCtx: pool.EquivCtx,
		})
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nbounded mapping search: equivalent=%v (pairs checked %d, truncated %v)\n",
			found, stats.PairsChecked, stats.Truncated)
		cs := pool.Stats()
		fmt.Fprintf(stdout, "engine cache: %d hits / %d misses (hit rate %.2f)\n",
			cs.Hits, cs.Misses, cs.HitRate())
		if found != eq && !stats.Truncated {
			fmt.Fprintln(stdout, "WARNING: search disagrees with the canonical-form test")
		}
	}

	if !eq {
		return 1
	}
	return 0
}

// verifyUserPair checks a user-supplied (α, β) pair: validity of both
// mappings and β∘α = id, all decided symbolically.
func verifyUserPair(s1, s2 *keyedeq.Schema, alphaFile, betaFile string, stdout, stderr io.Writer) int {
	fail := cli.Fail(stderr, "sqeq")
	aText, err := os.ReadFile(alphaFile)
	if err != nil {
		return fail(err)
	}
	bText, err := os.ReadFile(betaFile)
	if err != nil {
		return fail(err)
	}
	alpha, err := keyedeq.ParseMapping(s1, s2, string(aText))
	if err != nil {
		return fail(fmt.Errorf("alpha: %v", err))
	}
	beta, err := keyedeq.ParseMapping(s2, s1, string(bText))
	if err != nil {
		return fail(fmt.Errorf("beta: %v", err))
	}
	ok, err := keyedeq.VerifyDominance(alpha, beta)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "user-supplied pair establishes S1 ≼ S2 (valid + β∘α = id): %v\n", ok)
	if !ok {
		return 1
	}
	return 0
}

func loadSchema(fs *flag.FlagSet, inline string, arg int) (*keyedeq.Schema, error) {
	if inline != "" {
		return cli.Schema(inline)
	}
	if fs.NArg() <= arg {
		return nil, fmt.Errorf("need two schemas (files or -e/-e2); see -h")
	}
	return cli.SchemaFile(fs.Arg(arg))
}
