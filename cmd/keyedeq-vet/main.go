// Command keyedeq-vet runs the semantic static analyzer over query,
// program, mapping, and schema files and reports positioned findings
// (see internal/qvet for the rule catalogue).
//
// Usage:
//
//	keyedeq-vet [-s schema] [-dst schema] [-rules eqconflict,...] file...
//
// File kinds are chosen by extension:
//
//	.cq      standalone conjunctive queries, one per line
//	.prog    a non-recursive Datalog program ("def" lines declare views)
//	.map     a query mapping, one view per destination relation
//	.schema  a schema file, vetted on its own
//
// -s supplies the context schema (inline text or @file) that .cq
// bodies, .prog base relations, and .map sources resolve against; -dst
// supplies the destination schema for .map files.  Both are optional —
// without them the schema-dependent rules stay silent — except that
// vetting a .map file requires both.
//
// Findings print as "file:line:col: [rule] message".  A finding is
// suppressed by a "keyedeq:allow(rule) -- reason" comment on the same
// line or the line above.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// load or usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"keyedeq/internal/cli"
	"keyedeq/internal/qvet"
	"keyedeq/internal/schema"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("keyedeq-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaArg := fs.String("s", "", "context schema (inline text or @file)")
	dstArg := fs.String("dst", "", "destination schema for .map files (inline text or @file)")
	ruleNames := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := cli.Fail(stderr, "keyedeq-vet")
	if fs.NArg() == 0 {
		return fail(fmt.Errorf("need at least one .cq/.prog/.map/.schema file; see -h"))
	}

	rules, err := selectRules(*ruleNames)
	if err != nil {
		return fail(err)
	}
	var ctx, dst *schema.Schema
	if *schemaArg != "" {
		if ctx, err = cli.Schema(*schemaArg); err != nil {
			return fail(err)
		}
	}
	if *dstArg != "" {
		if dst, err = cli.Schema(*dstArg); err != nil {
			return fail(err)
		}
	}

	var units []*qvet.Unit
	for _, path := range fs.Args() {
		u, err := loadUnit(path, ctx, dst)
		if err != nil {
			return fail(err)
		}
		units = append(units, u)
	}

	diags := qvet.Run(units, rules)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "keyedeq-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// loadUnit builds the unit for one file, picking the kind by extension.
func loadUnit(path string, ctx, dst *schema.Schema) (*qvet.Unit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(data)
	switch filepath.Ext(path) {
	case ".cq":
		return qvet.NewQueriesUnit(path, text, ctx), nil
	case ".prog":
		return qvet.NewProgramUnit(path, text, ctx), nil
	case ".map":
		if ctx == nil || dst == nil {
			return nil, fmt.Errorf("%s: mapping files need -s (source) and -dst (destination) schemas", path)
		}
		return qvet.NewMappingUnit(path, text, ctx, dst), nil
	case ".schema":
		return qvet.NewSchemaUnit(path, text), nil
	}
	return nil, fmt.Errorf("%s: unknown kind (want .cq, .prog, .map, or .schema)", path)
}

// selectRules resolves a comma-separated rule list against the
// catalogue; empty means all rules.
func selectRules(names string) ([]qvet.Rule, error) {
	all := qvet.AllRules()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]qvet.Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []qvet.Rule
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, strings.Join(qvet.RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return out, nil
}
