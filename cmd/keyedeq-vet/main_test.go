package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSchema = "R(a*:T1, b:T2)\nE(src*:T1, dst:T1)\n"

func write(t *testing.T, dir, name, text string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func vet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanFileExitsZero(t *testing.T) {
	dir := t.TempDir()
	q := write(t, dir, "ok.cq", "Q(X) :- R(X, Y).\n")
	code, out, errb := vet(t, "-s", testSchema, q)
	if code != 0 || out != "" || errb != "" {
		t.Fatalf("code=%d out=%q err=%q, want clean run", code, out, errb)
	}
}

func TestFindingsExitOneWithPositions(t *testing.T) {
	dir := t.TempDir()
	q := write(t, dir, "bad.cq", "Q(X) :- R(X, Y), Y = T2:1, Y = T2:2.\n")
	code, out, _ := vet(t, "-s", testSchema, q)
	if code != 1 {
		t.Fatalf("code=%d, want 1; out=%q", code, out)
	}
	if !strings.Contains(out, "bad.cq:1:") || !strings.Contains(out, "[eqconflict]") {
		t.Errorf("output lacks positioned finding: %q", out)
	}
	if !strings.Contains(out, "1 finding(s)") {
		t.Errorf("output lacks summary: %q", out)
	}
}

func TestRulesSubsetFilters(t *testing.T) {
	dir := t.TempDir()
	q := write(t, dir, "bad.cq", "Q(X) :- R(X, Y), Y = T2:1, Y = T2:2.\n")
	code, out, _ := vet(t, "-s", testSchema, "-rules", "headunsafe", q)
	if code != 0 {
		t.Fatalf("unrelated rule still fired: code=%d out=%q", code, out)
	}
	code, _, errb := vet(t, "-s", testSchema, "-rules", "nosuchrule", q)
	if code != 2 || !strings.Contains(errb, "unknown rule") {
		t.Errorf("bad -rules: code=%d err=%q, want 2 + unknown rule", code, errb)
	}
}

func TestMappingNeedsBothSchemas(t *testing.T) {
	dir := t.TempDir()
	m := write(t, dir, "a.map", "V(X, Y) :- R(X, Y).\n")
	code, _, errb := vet(t, "-s", testSchema, m)
	if code != 2 || !strings.Contains(errb, "-dst") {
		t.Fatalf("code=%d err=%q, want 2 mentioning -dst", code, errb)
	}
	code, out, errb := vet(t, "-s", testSchema, "-dst", "V(v1*:T1, v2:T2)", m)
	if code != 0 {
		t.Fatalf("valid mapping: code=%d out=%q err=%q", code, out, errb)
	}
}

func TestSchemaFileNeedsNoContext(t *testing.T) {
	dir := t.TempDir()
	s := write(t, dir, "mixed.schema", "R(a*:T1, b:T2)\nS(x:T1, y:T2)\n")
	code, out, _ := vet(t, s)
	if code != 1 || !strings.Contains(out, "[keycover]") {
		t.Fatalf("code=%d out=%q, want keycover finding", code, out)
	}
}

func TestProgramFile(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "views.prog", "def V1(a:T1)\nV1(X) :- V1(X).\n")
	code, out, _ := vet(t, "-s", testSchema, p)
	if code != 1 || !strings.Contains(out, "[viewstrat]") || !strings.Contains(out, "views.prog:2:") {
		t.Fatalf("code=%d out=%q, want positioned viewstrat finding", code, out)
	}
}

func TestParseFailureIsAFinding(t *testing.T) {
	dir := t.TempDir()
	q := write(t, dir, "syntax.cq", "Q(X :- R(X, Y).\n")
	code, out, _ := vet(t, "-s", testSchema, q)
	if code != 1 || !strings.Contains(out, "[parse]") {
		t.Fatalf("code=%d out=%q, want a parse finding, not a fatal error", code, out)
	}
}

func TestAllowDirectiveSuppressesViaCLI(t *testing.T) {
	dir := t.TempDir()
	q := write(t, dir, "ok.cq",
		"Q(X) :- R(X, Y), Y = T2:1, Y = T2:2. # keyedeq:allow(eqconflict) -- empty on purpose\n")
	code, out, errb := vet(t, "-s", testSchema, q)
	if code != 0 {
		t.Fatalf("code=%d out=%q err=%q, want suppressed clean run", code, out, errb)
	}
}

func TestUnknownExtensionAndUsageErrors(t *testing.T) {
	dir := t.TempDir()
	x := write(t, dir, "data.txt", "whatever\n")
	if code, _, errb := vet(t, x); code != 2 || !strings.Contains(errb, "unknown kind") {
		t.Errorf("unknown extension: code=%d err=%q", code, errb)
	}
	if code, _, _ := vet(t); code != 2 {
		t.Errorf("no files: code=%d, want 2", code)
	}
	if code, _, _ := vet(t, "-s", "not a schema", x); code != 2 {
		t.Errorf("bad schema: code=%d, want 2", code)
	}
}

// TestExamplesAreVetClean keeps the shipped example inputs warning-free
// (the same invocation CI runs via `make qvet`).
func TestExamplesAreVetClean(t *testing.T) {
	root := filepath.Join("..", "..", "examples", "vet")
	code, out, errb := vet(t,
		"-s", "@"+filepath.Join(root, "company.schema"),
		filepath.Join(root, "queries.cq"),
		filepath.Join(root, "views.prog"),
		filepath.Join(root, "company.schema"),
	)
	if code != 0 {
		t.Fatalf("examples/vet not clean: code=%d\n%s%s", code, out, errb)
	}
	code, out, errb = vet(t,
		"-s", "@"+filepath.Join(root, "company.schema"),
		"-dst", "@"+filepath.Join(root, "archive.schema"),
		filepath.Join(root, "alpha.map"),
		filepath.Join(root, "archive.schema"),
	)
	if code != 0 {
		t.Fatalf("examples/vet mapping not clean: code=%d\n%s%s", code, out, errb)
	}
}
