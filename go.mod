module keyedeq

go 1.22
