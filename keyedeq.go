// Package keyedeq is a complete, from-scratch implementation of
// "Conjunctive Query Equivalence of Keyed Relational Schemas"
// (Albert, Ioannidis, Ramakrishnan — PODS 1997): the paper's conjunctive
// query language with equality selections, keyed relational schemas,
// query mappings, and the decision procedures its theory induces.
//
// The headline result, Theorem 13, states that two keyed schemas are
// conjunctive query equivalent if and only if they are identical up to
// renaming and re-ordering of attributes and relations.  This package
// exposes that as Equivalent (a near-linear canonical-form test) together
// with certificate construction (EquivalentWithWitness), full symbolic
// verification of dominance pairs (VerifyDominance), the κ-reduction of
// Theorem 9 (KappaReduction), conjunctive query containment and
// equivalence with and without key dependencies (Contained,
// EquivalentQueries), query minimization (MinimizeQuery), the chase, and
// the keys+referential-integrity transformations of the paper's
// introduction (subpackage behavior re-exported via MoveAttribute).
//
// # Quick start
//
//	s1 := keyedeq.MustParseSchema("employee(ss*:T1, name:T2)")
//	s2 := keyedeq.MustParseSchema("emp(id*:T1, nm:T2)")
//	keyedeq.Equivalent(s1, s2) // true: identical up to renaming
//
// Schemas are written one relation per line with key attributes starred
// and attribute types T1, T2, ...; conjunctive queries use the paper's
// Datalog-style syntax:
//
//	V(X, Y) :- R(X, Z), S(W, Y), Z = W, X = T1:3.
package keyedeq

import (
	"context"

	"keyedeq/internal/acyclic"
	"keyedeq/internal/bag"
	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/dominance"
	"keyedeq/internal/engine"
	"keyedeq/internal/fd"
	"keyedeq/internal/ind"
	"keyedeq/internal/instance"
	"keyedeq/internal/mapping"
	"keyedeq/internal/program"
	"keyedeq/internal/schema"
	"keyedeq/internal/ucq"
	"keyedeq/internal/value"
)

// Core model types, aliased from the implementation packages so the
// whole API is reachable from this single import.
type (
	// Schema is a relational database schema: an ordered list of
	// relation schemes, optionally keyed.
	Schema = schema.Schema
	// Relation is one relation scheme (name, typed attributes, key).
	Relation = schema.Relation
	// Attribute is a named, typed column.
	Attribute = schema.Attribute
	// Isomorphism witnesses that two schemas are identical up to
	// renaming and re-ordering.
	Isomorphism = schema.Isomorphism

	// Value is an atomic constant of some attribute type.
	Value = value.Value
	// Type identifies one of the disjoint attribute types.
	Type = value.Type
	// Allocator hands out fresh values per type.
	Allocator = value.Allocator
	// Choice is the paper's choice function f from types to constants.
	Choice = value.Choice

	// Database is a database instance: one relation instance per scheme.
	Database = instance.Database
	// Tuple is one row.
	Tuple = instance.Tuple

	// Query is a conjunctive query with equality selections in the
	// paper's restricted Datalog syntax.
	Query = cq.Query
	// Var is a query variable.
	Var = cq.Var
	// Term is a variable or constant.
	Term = cq.Term
	// Atom is one relation occurrence in a query body.
	Atom = cq.Atom
	// Equality is one predicate of the equality list.
	Equality = cq.Equality
	// Received describes what a head attribute receives (the paper's
	// "receives" analysis).
	Received = cq.Received

	// Mapping is a query mapping between schemas: one conjunctive view
	// per destination relation.
	Mapping = mapping.Mapping

	// FD is a schema-level functional dependency.
	FD = fd.FD
	// FDAttr names an attribute in an FD.
	FDAttr = fd.Attr

	// IND is an inclusion dependency (referential integrity constraint).
	IND = ind.IND
	// INDRef names a relation column list in an inclusion dependency.
	INDRef = ind.Ref
	// ConstrainedSchema pairs a schema with inclusion dependencies.
	ConstrainedSchema = ind.Constrained
	// MoveResult is the outcome of an attribute migration.
	MoveResult = ind.MoveResult

	// TGD is a tuple-generating dependency (inclusion dependencies in
	// dependency form), chased alongside the key EGDs.
	TGD = chase.TGD
	// TGDAtom is one atom of a TGD.
	TGDAtom = chase.TGDAtom

	// Homomorphism is a Chandra–Merlin containment certificate.
	Homomorphism = containment.Homomorphism

	// UCQ is a union of conjunctive queries.
	UCQ = ucq.Query

	// Program is a non-recursive Datalog program (layered UCQ views).
	Program = program.Program
	// ProgramView is one stratum of a Program.
	ProgramView = program.View

	// Witness certifies an equivalence with mappings in both directions.
	Witness = dominance.Witness
	// SearchBounds bound the semantic equivalence search.
	SearchBounds = dominance.SearchBounds
	// SearchStats reports the work a search did.
	SearchStats = dominance.SearchStats
	// SearchOptions tune the search's pair loop (parallelism, cached
	// equivalence decider).
	SearchOptions = dominance.SearchOptions
	// ContainmentStats reports homomorphism/chase work.
	ContainmentStats = containment.Stats

	// EquivFunc is the pluggable context-free equivalence decider shape
	// (SearchOptions.Equiv); EquivCtxFunc threads a context through
	// (SearchOptions.EquivCtx, EnginePool.EquivCtx).
	EquivFunc = mapping.EquivFunc
	// EquivCtxFunc is EquivFunc with a context for cancellation.
	EquivCtxFunc = mapping.EquivCtxFunc

	// Engine is the parallel batch equivalence/containment engine with
	// canonical-query caching.
	Engine = engine.Engine
	// EngineOptions configure an Engine (workers, cache size, job
	// timeout, injected clock).
	EngineOptions = engine.Options
	// EngineJob is one decision request in an engine batch.
	EngineJob = engine.Job
	// EngineReport aggregates an engine batch run.
	EngineReport = engine.Report
	// EnginePool routes decisions to per-(schema, deps) engines.
	EnginePool = engine.Pool
	// EngineCacheStats snapshots an engine's verdict cache.
	EngineCacheStats = engine.CacheStats
)

// ---- Schemas ----

// ParseSchema reads the textual schema format: one relation per line,
// "name(attr*:T1, attr:T2, ...)" with key attributes starred.
func ParseSchema(text string) (*Schema, error) { return schema.Parse(text) }

// MustParseSchema is ParseSchema but panics on error.
func MustParseSchema(text string) *Schema { return schema.MustParse(text) }

// Isomorphic reports whether two schemas are identical up to renaming and
// re-ordering of attributes and relations.
func Isomorphic(s1, s2 *Schema) bool { return schema.Isomorphic(s1, s2) }

// FindIsomorphism returns a witness for Isomorphic, if one exists.
func FindIsomorphism(s1, s2 *Schema) (*Isomorphism, bool) {
	return schema.FindIsomorphism(s1, s2)
}

// CanonicalForm returns the canonical form deciding isomorphism: equal
// canonical forms ⟺ isomorphic schemas.
func CanonicalForm(s *Schema) string { return schema.CanonicalForm(s) }

// Kappa returns κ(S) — the unkeyed key-projection schema — and, per
// relation, the original positions of the kept attributes.
func Kappa(s *Schema) (*Schema, [][]int) { return schema.Kappa(s) }

// ---- Instances ----

// NewDatabase returns an empty instance of s.
func NewDatabase(s *Schema) *Database { return instance.NewDatabase(s) }

// ProjectKappa projects a database instance onto κ(S).
func ProjectKappa(d *Database, kschema *Schema, pos [][]int) *Database {
	return instance.ProjectKappa(d, kschema, pos)
}

// KeyFDs returns the key dependencies of a keyed schema as functional
// dependencies (the EGDs used by the chase-based procedures).
func KeyFDs(s *Schema) []FD { return fd.KeyFDs(s) }

// ---- Queries ----

// ParseQuery reads a conjunctive query in the paper's syntax, e.g.
// "V(X, Y) :- R(X, Z), S(W, Y), Z = W.".
func ParseQuery(text string) (*Query, error) { return cq.Parse(text) }

// MustParseQuery is ParseQuery but panics on error.
func MustParseQuery(text string) *Query { return cq.MustParse(text) }

// EvalQuery evaluates q over d.
func EvalQuery(q *Query, d *Database) (*instance.Relation, error) { return cq.Eval(q, d) }

// IdentityQuery returns R(X1..Xn) :- R(X1..Xn).
func IdentityQuery(r *Relation) *Query { return cq.Identity(r) }

// Receives computes, per head attribute of q, the schema attributes and
// constants it receives (the paper's §2 analysis).
func Receives(q *Query) []Received { return cq.Receives(q) }

// IJSaturated reports whether every relation in q's body is ij-saturated.
func IJSaturated(q *Query) bool { return cq.IJSaturated(q) }

// Saturate adds the missing identity join conditions (the paper's q̂
// construction); it rejects queries with selections or non-identity
// joins.
func Saturate(q *Query) (*Query, error) { return cq.Saturate(q) }

// ToProduct converts an ij-saturated query into the equivalent product
// query of Lemma 1.
func ToProduct(q *Query) (*Query, error) { return cq.ToProduct(q) }

// ProductUnder builds Lemma 2's under-approximating product query q̃.
func ProductUnder(q *Query) (*Query, error) { return cq.ProductUnder(q) }

// QueryToSQL renders a conjunctive query as a SQL SELECT DISTINCT
// statement over the schema (for display and interoperability).
func QueryToSQL(q *Query, s *Schema) (string, error) { return cq.ToSQL(q, s) }

// IsAcyclic reports whether the query is α-acyclic (GYO reduction).
func IsAcyclic(q *Query) bool { return acyclic.IsAcyclic(q) }

// EvalBag evaluates under bag semantics: each answer with its number of
// derivations.
func EvalBag(q *Query, d *Database) (bag.Counts, error) { return bag.Eval(q, d) }

// BagEquivalent decides bag equivalence of conjunctive queries — by
// Chaudhuri–Vardi, query isomorphism; much more rigid than set
// equivalence.
func BagEquivalent(q1, q2 *Query) bool { return bag.BagEquivalent(q1, q2) }

// EvalAcyclic evaluates with Yannakakis' semijoin algorithm when the
// query is acyclic (full reducer first, so the final join never explores
// dead ends) and falls back to plain evaluation otherwise.  The answer
// always equals EvalQuery's.
func EvalAcyclic(q *Query, d *Database) (*instance.Relation, acyclic.Stats, error) {
	return acyclic.Eval(q, d)
}

// ---- Containment and equivalence of queries ----

// Contained reports q1 ⊑ q2 over all instances of s (Chandra–Merlin).
func Contained(q1, q2 *Query, s *Schema) (bool, error) {
	return containment.Contained(q1, q2, s)
}

// ContainedUnder reports q1 ⊑ q2 over instances satisfying deps (for key
// dependencies pass KeyFDs(s)); decided by chasing the canonical
// database.
func ContainedUnder(q1, q2 *Query, s *Schema, deps []FD) (bool, ContainmentStats, error) {
	return containment.ContainedUnder(q1, q2, s, deps)
}

// EquivalentQueries reports q1 ≡ q2 over all instances of s.
func EquivalentQueries(q1, q2 *Query, s *Schema) (bool, error) {
	return containment.Equivalent(q1, q2, s)
}

// EquivalentQueriesUnder reports q1 ≡ q2 under deps.
func EquivalentQueriesUnder(q1, q2 *Query, s *Schema, deps []FD) (bool, ContainmentStats, error) {
	return containment.EquivalentUnder(q1, q2, s, deps)
}

// MinimizeQuery computes a core of q (an equivalent query with minimal
// body), optionally under dependencies.
func MinimizeQuery(q *Query, s *Schema, deps []FD) (*Query, error) {
	return containment.Minimize(q, s, deps)
}

// ContainedUnderTheory reports q1 ⊑ q2 over instances satisfying both
// the EGDs (keys/FDs) and the TGDs (inclusion dependencies).  The TGD
// set should be weakly acyclic (see WeaklyAcyclic) so the chase
// terminates; maxRounds ≤ 0 selects a default bound.
func ContainedUnderTheory(q1, q2 *Query, s *Schema, egds []FD, tgds []TGD, maxRounds int) (bool, ContainmentStats, error) {
	return containment.ContainedUnderTheory(q1, q2, s, egds, tgds, maxRounds)
}

// EquivalentQueriesUnderTheory reports mutual containment under the
// full dependency theory.
func EquivalentQueriesUnderTheory(q1, q2 *Query, s *Schema, egds []FD, tgds []TGD, maxRounds int) (bool, ContainmentStats, error) {
	return containment.EquivalentUnderTheory(q1, q2, s, egds, tgds, maxRounds)
}

// WeaklyAcyclic reports whether the TGD set guarantees chase
// termination (the standard position-graph test).
func WeaklyAcyclic(s *Schema, tgds []TGD) bool { return chase.WeaklyAcyclic(s, tgds) }

// ViewFDHolds decides whether the FD X → Y (head positions) holds on
// q(d) for every instance d satisfying deps — the two-copy chase test.
func ViewFDHolds(s *Schema, deps []FD, q *Query, x, y []int) (bool, error) {
	return chase.ViewFDHolds(s, deps, q, x, y)
}

// FindHomomorphism decides q1 ⊑ q2 (under deps, if given) and returns
// the explicit homomorphism certificate on success.
func FindHomomorphism(q1, q2 *Query, s *Schema, deps []FD) (Homomorphism, bool, error) {
	return containment.FindHomomorphism(q1, q2, s, deps)
}

// VerifyHomomorphism checks a containment certificate symbolically.
func VerifyHomomorphism(q1, q2 *Query, h Homomorphism, s *Schema, deps []FD) error {
	return containment.VerifyHomomorphism(q1, q2, h, s, deps)
}

// ---- Unions of conjunctive queries ----

// ParseUCQ reads a union of conjunctive queries, one disjunct per line.
func ParseUCQ(text string) (*UCQ, error) { return ucq.Parse(text) }

// EvalUCQ evaluates a union over a database.
func EvalUCQ(u *UCQ, d *Database) (*instance.Relation, error) { return ucq.Eval(u, d) }

// UCQContained reports u1 ⊑ u2 under deps (Sagiv–Yannakakis).
func UCQContained(u1, u2 *UCQ, s *Schema, deps []FD) (bool, error) {
	return ucq.Contained(u1, u2, s, deps)
}

// UCQEquivalent reports mutual UCQ containment.
func UCQEquivalent(u1, u2 *UCQ, s *Schema, deps []FD) (bool, error) {
	return ucq.Equivalent(u1, u2, s, deps)
}

// MinimizeUCQ drops redundant disjuncts and takes the core of each
// survivor.
func MinimizeUCQ(u *UCQ, s *Schema, deps []FD) (*UCQ, error) {
	return ucq.Minimize(u, s, deps)
}

// ---- Non-recursive Datalog programs ----

// ParseProgram reads a layered-view program over the base schema:
// "def view(attrs...)" declarations followed by their UCQ rules.
func ParseProgram(base *Schema, text string) (*Program, error) {
	return program.Parse(base, text)
}

// ProgramEquivalent reports whether two programs' views compute the same
// answers on every deps-satisfying base instance (unfold + UCQ
// equivalence).
func ProgramEquivalent(p1 *Program, view1 string, p2 *Program, view2 string, deps []FD) (bool, error) {
	return program.Equivalent(p1, view1, p2, view2, deps)
}

// ---- Query mappings ----

// NewMapping builds a query mapping src → dst with one view per dst
// relation, validating arity and types.
func NewMapping(src, dst *Schema, queries []*Query) (*Mapping, error) {
	return mapping.New(src, dst, queries)
}

// ParseMapping reads a query mapping from text: one view per line, named
// for the destination relation it defines.
func ParseMapping(src, dst *Schema, text string) (*Mapping, error) {
	return mapping.Parse(src, dst, text)
}

// IdentityMapping returns the identity mapping S → S.
func IdentityMapping(s *Schema) *Mapping { return mapping.IdentityMapping(s) }

// Compose returns outer ∘ inner by symbolic query substitution.
func Compose(outer, inner *Mapping) (*Mapping, error) { return mapping.Compose(outer, inner) }

// MappingFromIsomorphism builds the witness mappings (α, β) for two
// isomorphic schemas.
func MappingFromIsomorphism(s1, s2 *Schema, iso *Isomorphism) (alpha, beta *Mapping, err error) {
	return mapping.FromIsomorphism(s1, s2, iso)
}

// VerifyDominance checks that (α, β) establish dominance in the paper's
// sense: both mappings valid and β∘α = id on key-satisfying instances —
// decided symbolically.
func VerifyDominance(alpha, beta *Mapping) (bool, error) {
	return mapping.Dominates(alpha, beta)
}

// ---- Schema equivalence (the paper's main theorems) ----

// Equivalent reports whether two keyed schemas are conjunctive query
// equivalent — by Theorem 13, iff they are identical up to renaming and
// re-ordering of attributes and relations.
func Equivalent(s1, s2 *Schema) bool { return dominance.Equivalent(s1, s2) }

// EquivalentWithWitness additionally returns certificate mappings.
func EquivalentWithWitness(s1, s2 *Schema) (*Witness, bool, error) {
	return dominance.EquivalentWithWitness(s1, s2)
}

// ExplainEquivalence returns a human-readable account of the decision.
func ExplainEquivalence(s1, s2 *Schema) string { return dominance.Explain(s1, s2) }

// KappaReduction applies Theorem 9: from a dominance pair (α, β) for
// S1 ≼ S2 it constructs (α_κ, β_κ) establishing κ(S1) ≼ κ(S2).
func KappaReduction(alpha, beta *Mapping, choice *Choice) (alphaK, betaK *Mapping, err error) {
	return dominance.KappaReduction(alpha, beta, choice)
}

// VerifyKappaPair checks β_κ∘α_κ = id on κ-instances.
func VerifyKappaPair(alphaK, betaK *Mapping) (bool, error) {
	return dominance.VerifyKappaPair(alphaK, betaK)
}

// SearchEquivalence decides equivalence semantically by bounded
// enumeration of candidate mappings — exponential, and by Theorem 13
// never finds anything Isomorphic would not; provided for validation and
// experimentation.
func SearchEquivalence(s1, s2 *Schema, b SearchBounds) (bool, SearchStats, error) {
	return dominance.SearchEquivalence(s1, s2, b)
}

// SearchEquivalenceOpts is SearchEquivalence with a parallel pair loop
// and a pluggable equivalence decider (see SearchOptions).
func SearchEquivalenceOpts(s1, s2 *Schema, b SearchBounds, opts SearchOptions) (bool, SearchStats, error) {
	return dominance.SearchEquivalenceOpts(s1, s2, b, opts)
}

// SearchEquivalenceCtx is SearchEquivalenceOpts with a context threaded
// through every certificate check, so cancellation and deadlines reach
// the underlying chase and homomorphism searches (set
// SearchOptions.EquivCtx — e.g. an EnginePool's EquivCtx — to keep
// cancellation live inside cached decisions too).
func SearchEquivalenceCtx(ctx context.Context, s1, s2 *Schema, b SearchBounds, opts SearchOptions) (bool, SearchStats, error) {
	return dominance.SearchEquivalenceOptsCtx(ctx, s1, s2, b, opts)
}

// DefaultSearchBounds are suitable for small schema spaces.
func DefaultSearchBounds() SearchBounds { return dominance.DefaultBounds() }

// ---- Batch engine ----

// NewEngine builds a batch equivalence/containment engine bound to s
// and deps; see EngineOptions for tuning.
func NewEngine(s *Schema, deps []FD, opts EngineOptions) *Engine {
	return engine.New(s, deps, opts)
}

// NewEnginePool builds an engine pool whose engines share opts; its
// Equiv method is a drop-in cached replacement for
// EquivalentQueriesUnder (and a valid SearchOptions.Equiv).
func NewEnginePool(opts EngineOptions) *EnginePool { return engine.NewPool(opts) }

// CanonicalQueryKey returns the renaming-invariant canonical key of q —
// equal keys certify α-equivalence (variable renaming + atom
// reordering).  The schema may be nil; it only collapses always-empty
// queries to a shared key.
func CanonicalQueryKey(q *Query, s *Schema) (key string, exact bool) {
	c := engine.CanonicalizeQuery(q, s)
	return c.Key, c.Exact
}
